// Matrix Protocol 2: deterministic SVD-threshold tracking (paper
// Algorithms 5.3 / 5.4) — the matrix analogue of heavy-hitter protocol P2
// and the paper's best deterministic method.
//
// Each site accumulates unsent rows in B_j and, whenever some direction of
// B_j carries squared norm >= (eps/m) * F-hat, ships that direction as one
// scaled singular vector sigma*v (removing it from B_j). Total squared
// Frobenius mass is tracked exactly like P2's scalar reports. The
// coordinator simply appends received directions to B.
//
// Guarantees (Theorem 4):
//   0 <= ‖Ax‖² − ‖Bx‖² <= ε‖A‖²_F  (one-sided: B never overestimates),
//   O((m/ε) log(βN)) messages.
//
// Implementation notes: B_j is represented exactly by its d x d Gram
// matrix G_j (appending a row and removing a singular direction are both
// exact Gram-level operations). Since appending row a raises the top
// eigenvalue by at most ‖a‖², no direction can cross the threshold until
// trace(G_j) does — and after a threshold check that ships nothing, not
// until the trace grows by another (threshold − bound) where `bound` is a
// certified upper bound on the remaining λ_max. This makes the per-row
// cost O(d²) amortized while sending *exactly* the same messages as the
// paper's per-row svd formulation.
//
// A threshold check only needs the eigenvalues at or above the threshold,
// so it runs on the partial Lanczos solver (linalg/lanczos.h): solve the
// top-k pairs (k grows geometrically from 4), ship every pair at or above
// the threshold, and deflate them from G_j with one batched rank-1 pass.
// The certificate that nothing send-worthy was missed comes from the
// exactly-known trace: the spectrum not captured by the returned Ritz
// pairs sums to at most trace(G_j) − Σθᵢ, so once that remainder (plus
// the solver's residual coupling bound) is below the threshold, every
// eigenvalue ≥ threshold is provably among the computed pairs. Streams
// with flat spectra, where k would have to approach d for that
// certificate, fall back to one exact Jacobi decomposition instead — the
// messages are identical either way.
#ifndef DMT_MATRIX_MP2_SVD_THRESHOLD_H_
#define DMT_MATRIX_MP2_SVD_THRESHOLD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "linalg/lanczos.h"
#include "matrix/matrix_protocol.h"
#include "stream/network.h"

namespace dmt {
namespace matrix {

/// Deterministic SVD-threshold protocol (MP2).
class MP2SvdThreshold : public MatrixTrackingProtocol {
 public:
  MP2SvdThreshold(size_t num_sites, double eps);

  void ProcessRow(size_t site, const std::vector<double>& row) override;
  void SiteUpdate(size_t site, const std::vector<double>& row) override;
  void Synchronize() override;
  void SynchronizeSites(const uint32_t* sites, size_t count) override;
  bool SupportsTargetedDrain() const override { return true; }
  size_t PendingOutboxSize(size_t site) const override {
    return outbox_[site].size();
  }
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  /// Rows sqrt(lambda_i) v_i^T reconstructed from the coordinator's exact
  /// Gram of all received directions.
  linalg::Matrix CoordinatorSketch() const override;
  linalg::Matrix CoordinatorGram() const override { return coord_gram_; }
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "P2"; }

  double coordinator_frobenius() const { return coord_fest_; }
  /// Threshold checks (partial or fallback eigensolves) across all sites
  /// (cost diagnostic).
  size_t decomposition_count() const {
    return decompositions_.load(std::memory_order_relaxed);
  }

  /// One queued site->coordinator message: either a total-mass scalar
  /// report (value = F_j) or a shipped direction (value = lambda,
  /// dir = v; the coordinator appends sqrt(lambda) v to B, i.e. adds
  /// lambda * v v^T to its Gram). Public because the wire transport
  /// (src/net) serializes it.
  struct PendingMsg {
    bool is_scalar;
    double value;
    std::vector<double> dir;
  };

  // --- Wire-transport hooks (src/net); see P1BatchedMG for the scheme.

  /// Site half: moves out this site's queued messages, in emission order.
  std::vector<PendingMsg> TakePendingMessages(size_t site);
  /// Coordinator half: records the message cost for `site` and applies one
  /// message — the remote-delivery equivalent of Synchronize()'s drain.
  void DeliverMessage(size_t site, const PendingMsg& msg);
  /// F-hat as of the last broadcast (0 before the first) — the value the
  /// coordinator pushes down to sites at a window boundary.
  double last_broadcast_fest() const {
    return sites_.empty() ? 0.0 : sites_[0].fest;
  }
  /// Installs a received F-hat broadcast into one site's view.
  void SetSiteFest(size_t site, double fest);
  /// Row dimension (0 until the first row or delivered direction).
  size_t dim() const { return dim_; }

 private:
  // Each site keeps the Gram of its unsent rows in original coordinates;
  // appending a row is one symmetric rank-1 update and a threshold check
  // is a warm-seeded partial Lanczos solve (certified through the trace,
  // see the header comment). The messages produced are identical to
  // decomposing from scratch.
  struct SiteState {
    linalg::Matrix gram;        // B_j^T B_j
    double trace = 0.0;         // trace(gram) maintained incrementally
    double next_check = 0.0;    // no threshold check before this trace
    double scalar_counter = 0.0;// F_j for total-mass reports
    double fest = 0.0;          // F-hat as known by the site
    // Warm start and solver scratch; per-site so the concurrent
    // SiteUpdate phase never shares mutable state across sites.
    std::vector<double> seed;   // previous check's leading eigenvector
    linalg::LanczosSolver solver;
    std::vector<double> vals;
    linalg::Matrix vecs;
  };

  // Delivers one site's queued messages in emission order.
  void DrainSite(size_t site);
  // Lazy structural init from the first row (thread-safe via dim_once_).
  void EnsureDim(const std::vector<double>& row);
  // Site half of the total-mass report: returns the amount to deliver
  // (0.0 when below threshold); records the scalar message.
  double SiteScalarPhase(size_t site, double w);
  // Coordinator half: folds a reported amount, broadcasting F-hat after m
  // scalar reports.
  void ApplyScalar(double amount);
  // Direction-shipping logic shared by both schedules. `sink` == nullptr
  // applies to the coordinator Gram immediately (serial path); otherwise
  // directions are queued for Synchronize().
  void ElementPhase(size_t site, const std::vector<double>& row, double w,
                    std::vector<PendingMsg>* sink);
  void EmitDirection(size_t site, double lam, const std::vector<double>& v,
                     std::vector<PendingMsg>* sink);
  void MaybeSendDirections(size_t site, std::vector<PendingMsg>* sink);

  double eps_;
  size_t dim_ = 0;
  std::once_flag dim_once_;
  stream::Network network_;
  std::vector<SiteState> sites_;
  std::vector<std::vector<PendingMsg>> outbox_;  // per-site, FIFO
  linalg::Matrix coord_gram_;   // Gram of all received directions
  double coord_fest_ = 0.0;     // coordinator's F-hat
  size_t scalar_msgs_since_broadcast_ = 0;
  std::atomic<size_t> decompositions_{0};
};

}  // namespace matrix
}  // namespace dmt

#endif  // DMT_MATRIX_MP2_SVD_THRESHOLD_H_
