// Matrix Protocol 2: deterministic SVD-threshold tracking (paper
// Algorithms 5.3 / 5.4) — the matrix analogue of heavy-hitter protocol P2
// and the paper's best deterministic method.
//
// Each site accumulates unsent rows in B_j and, whenever some direction of
// B_j carries squared norm >= (eps/m) * F-hat, ships that direction as one
// scaled singular vector sigma*v (removing it from B_j). Total squared
// Frobenius mass is tracked exactly like P2's scalar reports. The
// coordinator simply appends received directions to B.
//
// Guarantees (Theorem 4):
//   0 <= ‖Ax‖² − ‖Bx‖² <= ε‖A‖²_F  (one-sided: B never overestimates),
//   O((m/ε) log(βN)) messages.
//
// Implementation notes: B_j is represented exactly by its d x d Gram
// matrix G_j (appending a row and removing a singular direction are both
// exact Gram-level operations). Since appending row a raises the top
// eigenvalue by at most ‖a‖², no direction can cross the threshold until
// trace(G_j) does — and after an eigendecomposition that ships nothing,
// not until the trace grows by another (threshold − λ_max). This makes the
// per-row cost O(d²) amortized while sending *exactly* the same messages
// as the paper's per-row svd formulation.
#ifndef DMT_MATRIX_MP2_SVD_THRESHOLD_H_
#define DMT_MATRIX_MP2_SVD_THRESHOLD_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "matrix/matrix_protocol.h"
#include "stream/network.h"

namespace dmt {
namespace matrix {

/// Deterministic SVD-threshold protocol (MP2).
class MP2SvdThreshold : public MatrixTrackingProtocol {
 public:
  MP2SvdThreshold(size_t num_sites, double eps);

  void ProcessRow(size_t site, const std::vector<double>& row) override;
  void SiteUpdate(size_t site, const std::vector<double>& row) override;
  void Synchronize() override;
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  /// Rows sqrt(lambda_i) v_i^T reconstructed from the coordinator's exact
  /// Gram of all received directions.
  linalg::Matrix CoordinatorSketch() const override;
  linalg::Matrix CoordinatorGram() const override { return coord_gram_; }
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "P2"; }

  double coordinator_frobenius() const { return coord_fest_; }
  /// Eigendecompositions performed across all sites (cost diagnostic).
  size_t decomposition_count() const {
    return decompositions_.load(std::memory_order_relaxed);
  }

 private:
  // Each site keeps the Gram of its unsent rows expressed in its own
  // rotating eigenbasis: B_j^T B_j = basis * gram * basis^T with `gram`
  // kept nearly diagonal. Appending a row adds (basis^T a)(basis^T a)^T;
  // a threshold check is a warm-started Jacobi pass that applies only the
  // rotations the new rows require. The messages produced are identical
  // to decomposing from scratch.
  struct SiteState {
    linalg::Matrix basis;       // V: d x d orthogonal
    linalg::Matrix gram;        // V^T B_j^T B_j V, nearly diagonal
    double trace = 0.0;         // trace(gram) maintained incrementally
    double next_check = 0.0;    // no eigendecomposition before this trace
    double scalar_counter = 0.0;// F_j for total-mass reports
    double fest = 0.0;          // F-hat as known by the site
  };

  /// One queued site->coordinator message: either a total-mass scalar
  /// report (value = F_j) or a shipped direction (value = lambda,
  /// dir = v; the coordinator appends sqrt(lambda) v to B, i.e. adds
  /// lambda * v v^T to its Gram).
  struct PendingMsg {
    bool is_scalar;
    double value;
    std::vector<double> dir;
  };

  // Lazy structural init from the first row (thread-safe via dim_once_).
  void EnsureDim(const std::vector<double>& row);
  // Site half of the total-mass report: returns the amount to deliver
  // (0.0 when below threshold); records the scalar message.
  double SiteScalarPhase(size_t site, double w);
  // Coordinator half: folds a reported amount, broadcasting F-hat after m
  // scalar reports.
  void ApplyScalar(double amount);
  // Direction-shipping logic shared by both schedules. `sink` == nullptr
  // applies to the coordinator Gram immediately (serial path); otherwise
  // directions are queued for Synchronize().
  void ElementPhase(size_t site, const std::vector<double>& row, double w,
                    std::vector<PendingMsg>* sink);
  void EmitDirection(size_t site, double lam, const std::vector<double>& v,
                     std::vector<PendingMsg>* sink);
  void MaybeSendDirections(size_t site, std::vector<PendingMsg>* sink);

  double eps_;
  size_t dim_ = 0;
  std::once_flag dim_once_;
  stream::Network network_;
  std::vector<SiteState> sites_;
  std::vector<std::vector<PendingMsg>> outbox_;  // per-site, FIFO
  linalg::Matrix coord_gram_;   // Gram of all received directions
  double coord_fest_ = 0.0;     // coordinator's F-hat
  size_t scalar_msgs_since_broadcast_ = 0;
  std::atomic<size_t> decompositions_{0};
};

}  // namespace matrix
}  // namespace dmt

#endif  // DMT_MATRIX_MP2_SVD_THRESHOLD_H_
