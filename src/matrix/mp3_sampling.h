// Matrix Protocol 3: squared-norm priority sampling (paper Section 5.3) —
// the matrix analogue of heavy-hitter protocol P3.
//
// Rows are treated as weighted items with w = ‖a‖²; sites forward a row
// when its priority w/Unif(0,1] reaches the global threshold, and the
// coordinator runs the identical two-queue round structure as hh::P3.
// At query time the sampled rows are stacked into B after rescaling: rows
// with w < rho-hat are scaled up so their squared norm equals the
// adjusted weight max(w, rho-hat) (rows above the threshold stay as-is).
//
// Guarantee (Theorem 5): |‖Ax‖² − ‖Bx‖²| ≤ ε‖A‖²_F w.p. >= 1 - 1/s using
// O((m + s) log(βN/s)) messages, s = Θ((1/ε²) log(1/ε)).
//
// The with-replacement variant (Section 4.3.1 applied to rows) keeps s
// independent single-row samplers; each sampled row is rescaled to squared
// norm W-hat/s. It needs more communication for the same accuracy, which
// Table 1 reproduces.
#ifndef DMT_MATRIX_MP3_SAMPLING_H_
#define DMT_MATRIX_MP3_SAMPLING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "matrix/matrix_protocol.h"
#include "stream/network.h"
#include "util/rng.h"

namespace dmt {
namespace matrix {

/// Without-replacement row-sampling protocol (MP3 / "P3wor").
class MP3SamplingWoR : public MatrixTrackingProtocol {
 public:
  /// `sample_size` = 0 derives s from eps (same formula as hh::P3).
  MP3SamplingWoR(size_t num_sites, double eps, uint64_t seed,
                 size_t sample_size = 0);

  void ProcessRow(size_t site, const std::vector<double>& row) override;
  void SiteUpdate(size_t site, const std::vector<double>& row) override;
  void Synchronize() override;
  void SynchronizeSites(const uint32_t* sites, size_t count) override;
  bool SupportsTargetedDrain() const override { return true; }
  size_t PendingOutboxSize(size_t site) const override {
    return outbox_[site].size();
  }
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  linalg::Matrix CoordinatorSketch() const override;
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "P3wor"; }

  size_t sample_size() const { return s_; }
  double threshold() const { return tau_; }

 private:
  struct SampledRow {
    std::vector<double> row;
    double weight = 0.0;   // squared norm at arrival
    double priority = 0.0;
  };

  /// Delivers one site's queued forwards in emission order.
  void DrainSite(size_t site);
  void EndRoundIfNeeded();

  size_t s_;
  stream::Network network_;
  // One private generator per site (seed = base ⊕ site), so sites draw
  // priorities independently and may run on concurrent threads.
  std::vector<Rng> site_rngs_;
  double tau_ = 1.0;
  bool tau_ever_doubled_ = false;
  std::vector<SampledRow> q_cur_;
  std::vector<SampledRow> q_next_;
  // Forwarded rows awaiting coordinator bucketing (per-site, FIFO).
  std::vector<std::vector<SampledRow>> outbox_;
};

/// With-replacement row-sampling protocol (MP3wr / "P3wr").
class MP3SamplingWR : public MatrixTrackingProtocol {
 public:
  MP3SamplingWR(size_t num_sites, double eps, uint64_t seed,
                size_t sample_size = 0);

  void ProcessRow(size_t site, const std::vector<double>& row) override;
  void SiteUpdate(size_t site, const std::vector<double>& row) override;
  void Synchronize() override;
  void SynchronizeSites(const uint32_t* sites, size_t count) override;
  bool SupportsTargetedDrain() const override { return true; }
  size_t PendingOutboxSize(size_t site) const override {
    return outbox_[site].size();
  }
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  linalg::Matrix CoordinatorSketch() const override;
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "P3wr"; }

  size_t sample_size() const { return s_; }

 private:
  struct Slot {
    std::vector<double> row;
    double weight = 0.0;
    double top_priority = 0.0;
    double second_priority = 0.0;
  };

  /// All sampler successes of one row scored at one site: (slot index,
  /// priority) pairs, delivered to the coordinator as one batch so round
  /// accounting matches the per-row serial schedule.
  struct PendingSends {
    std::vector<double> row;
    double weight;
    std::vector<std::pair<size_t, double>> hits;
  };

  void ApplySlotUpdate(size_t t, const std::vector<double>& row,
                       double weight, double rho);
  /// Delivers one site's queued sampler successes in emission order.
  void DrainSite(size_t site);
  void EndRoundIfNeeded();

  size_t s_;
  stream::Network network_;
  // One private generator per site (seed = base ⊕ site); see MP3SamplingWoR.
  std::vector<Rng> site_rngs_;
  double tau_ = 1.0;
  std::vector<Slot> slots_;
  size_t slots_below_2tau_ = 0;
  std::vector<std::vector<PendingSends>> outbox_;  // per-site, FIFO
};

}  // namespace matrix
}  // namespace dmt

#endif  // DMT_MATRIX_MP3_SAMPLING_H_
