// Lanczos partial eigensolver vs full Jacobi on the FD shrink shape,
// tracked as BENCH_partial_eigen.json.
//
// Usage: partial_eigen [output.json]
//   DMT_SCALE=small|default|paper selects the (ell, d) sweep; small keeps
//   the CI smoke run to the d=256 column.
//
// Two comparisons per (ell, d) point:
//  * solver: top ell+1 eigenpairs of a 2*ell x d buffer's Gram — thick
//    restart Lanczos (linalg/lanczos.h; row matvecs when 2*ell < d, so
//    the Gram is never materialized) against the full-spectrum route
//    (blocked Gram build + Jacobi SymmetricEigen), with the eigenvalue
//    agreement reported and gated.
//  * fd_stream: FrequentDirections streaming throughput with the Lanczos
//    shrink backend vs the Jacobi reference backend, with the final
//    covariance error of both sketches against the exact Gram — the two
//    must agree within 1e-8 (hard DMT_CHECK, every scale).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/kernels.h"
#include "linalg/lanczos.h"
#include "linalg/matrix.h"
#include "matrix/error.h"
#include "sketch/frequent_directions.h"
#include "util/check.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace dmt;

linalg::Matrix GaussianRows(size_t n, size_t d, Rng* rng) {
  linalg::Matrix a(n, d);
  for (size_t i = 0; i < n; ++i) {
    double* r = a.Row(i);
    for (size_t j = 0; j < d; ++j) r[j] = rng->NextGaussian();
  }
  return a;
}

struct SolverPoint {
  size_t ell, d, rows, k;
  double jacobi_seconds;
  double lanczos_seconds;
  double speedup;
  size_t lanczos_matvecs;
  double rel_eig_diff;  // max |lambda_L - lambda_J| / lambda_1
};

SolverPoint MeasureSolver(size_t ell, size_t d, Rng* rng) {
  const size_t n = 2 * ell;  // the streaming shrink shape
  const size_t k = std::min(ell + 1, d);
  linalg::Matrix buffer = GaussianRows(n, d, rng);

  SolverPoint p{ell, d, n, k, 0.0, 0.0, 0.0, 0, 0.0};

  // Full-spectrum reference: blocked Gram build + Jacobi, timed together
  // (that is what a full-decomposition shrink pays).
  linalg::EigenDecomposition full;
  {
    Timer t;
    linalg::Matrix gram(d, d);
    linalg::kernels::Gram(buffer.Row(0), n, d, gram.Row(0));
    full = linalg::SymmetricEigen(gram);
    p.jacobi_seconds = t.Seconds();
  }

  std::vector<double> vals;
  linalg::Matrix vecs;
  linalg::LanczosInfo info;
  {
    Timer t;
    linalg::LanczosOptions opts;
    opts.tol = 1e-11;
    info = n < d ? linalg::LanczosTopKOfRows(buffer, k, &vals, &vecs, opts)
                 : linalg::LanczosTopKOfGram(buffer.Gram(), k, &vals, &vecs,
                                             opts);
    p.lanczos_seconds = t.Seconds();
  }
  DMT_CHECK(info.converged);
  p.lanczos_matvecs = info.matvecs;
  p.speedup = p.jacobi_seconds / p.lanczos_seconds;

  const double scale = std::max(full.eigenvalues.front(), 1e-300);
  for (size_t i = 0; i < k; ++i) {
    const double ref = std::max(0.0, full.eigenvalues[i]);
    p.rel_eig_diff =
        std::max(p.rel_eig_diff, std::fabs(vals[i] - ref) / scale);
  }
  return p;
}

struct StreamPoint {
  size_t ell, d, rows;
  double jacobi_rows_per_sec;
  double lanczos_rows_per_sec;
  double speedup;
  size_t jacobi_shrinks, lanczos_shrinks;
  double cov_err_jacobi;
  double cov_err_lanczos;
  double abs_err_diff;
};

StreamPoint MeasureStream(size_t ell, size_t d, Rng* rng) {
  const size_t n = 8 * ell;  // enough rows for several shrinks
  linalg::Matrix a = GaussianRows(n, d, rng);
  matrix::CovarianceTracker truth(d);
  truth.AddRows(a);

  const auto run = [&](sketch::FdShrinkBackend backend, double* seconds,
                       size_t* shrinks) {
    sketch::FrequentDirections fd(ell, d);
    fd.set_shrink_backend(backend);
    Timer t;
    for (size_t i = 0; i < n; ++i) fd.Append(a.Row(i), d);
    *seconds = t.Seconds();
    *shrinks = fd.shrink_count();
    return matrix::CovarianceError(truth, fd.Gram());
  };

  StreamPoint p{ell, d, n, 0, 0, 0, 0, 0, 0, 0, 0};
  double sj = 0.0, sl = 0.0;
  p.cov_err_jacobi = run(sketch::FdShrinkBackend::kJacobi, &sj,
                         &p.jacobi_shrinks);
  p.cov_err_lanczos = run(sketch::FdShrinkBackend::kLanczos, &sl,
                          &p.lanczos_shrinks);
  p.jacobi_rows_per_sec = n / sj;
  p.lanczos_rows_per_sec = n / sl;
  p.speedup = sj / sl;
  p.abs_err_diff = std::fabs(p.cov_err_jacobi - p.cov_err_lanczos);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      ++i;  // space-separated flag value is not the output path
      continue;
    }
    if (argv[i][0] != '-') out_path = argv[i];
  }

  const Scale scale = GetScale();
  std::vector<size_t> ells = {16, 64, 128, 256};
  std::vector<size_t> dims = {256, 1024};
  if (scale == Scale::kSmall) {
    ells = {16, 64};  // CI smoke: seconds, not minutes
    dims = {256};
  }

  Rng rng(777);
  std::vector<SolverPoint> solver;
  std::vector<StreamPoint> streams;
  for (size_t d : dims) {
    for (size_t ell : ells) {
      solver.push_back(MeasureSolver(ell, d, &rng));
      streams.push_back(MeasureStream(ell, d, &rng));
    }
  }

  bench::EmitBenchJson(out_path, "partial_eigen", [&](FILE* f) {
    std::fprintf(f, "  \"solver\": [\n");
    for (size_t i = 0; i < solver.size(); ++i) {
      const SolverPoint& p = solver[i];
      std::fprintf(f,
                   "    {\"ell\": %zu, \"d\": %zu, \"rows\": %zu, "
                   "\"k\": %zu, \"jacobi_seconds\": %.6f, "
                   "\"lanczos_seconds\": %.6f, \"speedup\": %.3f, "
                   "\"lanczos_matvecs\": %zu, \"rel_eig_diff\": %.3e}%s\n",
                   p.ell, p.d, p.rows, p.k, p.jacobi_seconds,
                   p.lanczos_seconds, p.speedup, p.lanczos_matvecs,
                   p.rel_eig_diff, i + 1 < solver.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"fd_stream\": [\n");
    for (size_t i = 0; i < streams.size(); ++i) {
      const StreamPoint& p = streams[i];
      std::fprintf(
          f,
          "    {\"ell\": %zu, \"d\": %zu, \"rows\": %zu, "
          "\"jacobi_rows_per_sec\": %.0f, \"lanczos_rows_per_sec\": %.0f, "
          "\"speedup\": %.3f, \"jacobi_shrinks\": %zu, "
          "\"lanczos_shrinks\": %zu, \"cov_err_jacobi\": %.10f, "
          "\"cov_err_lanczos\": %.10f, \"abs_err_diff\": %.3e}%s\n",
          p.ell, p.d, p.rows, p.jacobi_rows_per_sec, p.lanczos_rows_per_sec,
          p.speedup, p.jacobi_shrinks, p.lanczos_shrinks, p.cov_err_jacobi,
          p.cov_err_lanczos, p.abs_err_diff,
          i + 1 < streams.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
  });

  // Hard gates (every scale): the partial solver must agree with the full
  // decomposition, and the Lanczos-backed FD must leave the covariance
  // error unchanged within 1e-8.
  for (const auto& p : solver) DMT_CHECK_LT(p.rel_eig_diff, 1e-9);
  for (const auto& p : streams) {
    DMT_CHECK_EQ(p.jacobi_shrinks, p.lanczos_shrinks);
    DMT_CHECK_LT(p.abs_err_diff, 1e-8);
  }
  return 0;
}
