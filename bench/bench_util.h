// Shared drivers for the figure/table reproduction harnesses.
//
// Every harness follows the paper's evaluation recipe: generate one stream,
// feed all protocols the identical (site, element) sequence, then report
// the metrics of Section 6 — recall / precision / avg relative error of
// true heavy hitters / message counts for the HH experiments, and
// covariance error / message counts for the matrix experiments.
//
// Streams are materialized once and protocols run through the parallel
// stream::SimulationDriver: site-local sketch work uses all configured
// threads (--threads flag / DMT_THREADS env, default hardware concurrency)
// while results stay bit-identical across thread counts.
#ifndef DMT_BENCH_BENCH_UTIL_H_
#define DMT_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "data/dataset.h"
#include "data/synthetic_matrix.h"
#include "data/zipf.h"
#include "hh/exact_tracker.h"
#include "hh/hh_protocol.h"
#include "hh/p1_batched_mg.h"
#include "hh/p2_threshold.h"
#include "hh/p3_sampling.h"
#include "hh/p4_randomized.h"
#include "matrix/baselines.h"
#include "matrix/error.h"
#include "matrix/matrix_protocol.h"
#include "matrix/mp1_batched_fd.h"
#include "matrix/mp2_svd_threshold.h"
#include "matrix/mp3_sampling.h"
#include "matrix/mp4_experimental.h"
#include "stream/router.h"
#include "stream/simulation_driver.h"
#include "util/check.h"
#include "util/env.h"
#include "util/table_printer.h"

namespace dmt {
namespace bench {

/// Emits a BENCH_*.json artifact the way the repo tracks perf
/// trajectories. The harness prints the standard envelope — bench name,
/// the machine's detected hardware-thread count (so single-core
/// recordings are machine-checkable: the checked-in
/// BENCH_parallel_sites.json and BENCH_serving_mixed.json both remain
/// 1-core recordings with the degraded_environment marker set —
/// re-record on multicore hardware before quoting concurrency numbers
/// from them), and the DMT_SCALE in effect — then `body(f)`
/// appends the bench-specific fields (two-space indented, no trailing
/// comma on the last one) before the closing brace. The JSON goes to
/// stdout and, when `path` is non-null, to that file too (the repo keeps
/// the checked-in BENCH_*.json up to date).
template <typename Body>
inline void EmitBenchJson(const char* path, const char* bench_name,
                          Body body) {
  // dmt-lint: allow(determinism-thread-fp): recorded as metadata only.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool degraded = hw <= 1;
  if (degraded) {
    std::fprintf(stderr,
                 "warning: single hardware thread detected — parallel "
                 "speedups in this recording are not meaningful\n");
  }
  const auto emit = [&](FILE* f) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n", bench_name);
    std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
    if (degraded) {
      std::fprintf(f, "  \"degraded_environment\": \"single hardware "
                   "thread — speedups not meaningful\",\n");
    }
    std::fprintf(f, "  \"scale\": \"%s\",\n",
                 GetEnvString("DMT_SCALE", "default").c_str());
    body(f);
    std::fprintf(f, "}\n");
  };
  emit(stdout);
  if (path != nullptr) {
    FILE* f = std::fopen(path, "w");
    DMT_CHECK(f != nullptr);
    emit(f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path);
  }
}

/// Parses a `--threads N` / `--threads=N` flag; 0 (flag absent) lets the
/// driver resolve DMT_THREADS / hardware concurrency.
inline size_t ParseThreadsFlag(int argc, char** argv) {
  return stream::ParseThreadsArg(argc, argv);
}

// ---------------------------------------------------------------------
// Heavy hitters.
// ---------------------------------------------------------------------

struct HhMetrics {
  std::string protocol;
  double recall = 0.0;
  double precision = 0.0;
  double avg_rel_err = 0.0;  // of true heavy hitters
  uint64_t messages = 0;
};

struct HhExperimentConfig {
  size_t stream_len = 1000000;
  size_t num_sites = 50;
  uint64_t universe = 10000;
  double skew = 2.0;
  double beta = 1000.0;
  double phi = 0.05;
  uint64_t seed = 1;
  /// Site-phase worker threads (0 = DMT_THREADS / hardware concurrency).
  size_t threads = 0;
  /// Arrivals between coordinator synchronization rounds.
  size_t chunk_elements = 8192;
};

inline std::unique_ptr<hh::HeavyHitterProtocol> MakeHhProtocol(
    const std::string& name, size_t m, double eps, uint64_t seed) {
  if (name == "P1") return std::make_unique<hh::P1BatchedMG>(m, eps);
  if (name == "P2") return std::make_unique<hh::P2Threshold>(m, eps);
  if (name == "P3") return std::make_unique<hh::P3SamplingWoR>(m, eps, seed);
  if (name == "P3wr") return std::make_unique<hh::P3SamplingWR>(m, eps, seed);
  if (name == "P4") return std::make_unique<hh::P4Randomized>(m, eps, seed);
  return std::make_unique<hh::ExactTracker>(m);
}

/// Runs all `protocol_names` over one shared Zipfian stream with the given
/// per-protocol epsilon values (parallel array), and reports the paper's
/// four HH metrics for each.
inline std::vector<HhMetrics> RunHhExperiment(
    const HhExperimentConfig& cfg,
    const std::vector<std::string>& protocol_names,
    const std::vector<double>& epsilons) {
  std::vector<std::unique_ptr<hh::HeavyHitterProtocol>> protocols;
  for (size_t i = 0; i < protocol_names.size(); ++i) {
    protocols.push_back(MakeHhProtocol(protocol_names[i], cfg.num_sites,
                                       epsilons[i], cfg.seed + 100 + i));
  }

  // Materialize the stream + assignment once; every protocol then runs
  // over the identical (site, element) sequence on the parallel driver.
  data::ZipfianStream z(cfg.universe, cfg.skew, cfg.beta, cfg.seed);
  stream::Router router(cfg.num_sites, stream::RoutingPolicy::kUniform,
                        cfg.seed + 1);
  data::ExactWeights truth;
  std::vector<stream::WeightedUpdate> items(cfg.stream_len);
  for (size_t i = 0; i < cfg.stream_len; ++i) {
    data::WeightedItem item = z.Next();
    truth.Observe(item);
    items[i] = stream::WeightedUpdate{item.element, item.weight};
  }
  const std::vector<size_t> sites =
      stream::AssignSites(&router, cfg.stream_len);

  stream::SimulationOptions driver_opt;
  driver_opt.threads = cfg.threads;
  driver_opt.chunk_elements = cfg.chunk_elements;
  stream::SimulationDriver driver(driver_opt);
  for (auto& p : protocols) driver.Run(p.get(), sites, items);

  const auto truth_hh = truth.HeavyHitters(cfg.phi);
  std::vector<HhMetrics> out;
  for (size_t i = 0; i < protocols.size(); ++i) {
    const auto& p = protocols[i];
    HhMetrics m;
    m.protocol = protocol_names[i];
    m.messages = p->comm_stats().total();

    auto reported = p->HeavyHitters(cfg.phi, epsilons[i]);
    size_t hits = 0;
    for (uint64_t e : truth_hh) {
      if (std::find(reported.begin(), reported.end(), e) != reported.end()) {
        ++hits;
      }
    }
    m.recall = truth_hh.empty()
                   ? 1.0
                   : static_cast<double>(hits) / truth_hh.size();
    m.precision = reported.empty()
                      ? 1.0
                      : static_cast<double>(hits) / reported.size();
    double err_sum = 0.0;
    for (uint64_t e : truth_hh) {
      const double w = truth.Weight(e);
      err_sum += std::abs(p->EstimateElementWeight(e) - w) / w;
    }
    m.avg_rel_err = truth_hh.empty() ? 0.0 : err_sum / truth_hh.size();
    out.push_back(m);
  }
  return out;
}

// ---------------------------------------------------------------------
// Matrix tracking.
// ---------------------------------------------------------------------

struct MatrixMetrics {
  std::string protocol;
  double err = 0.0;  // ||A^T A - B^T B||_2 / ||A||_F^2
  uint64_t messages = 0;
};

struct MatrixExperimentConfig {
  /// Synthetic generator, used when `source` is null (the pre-dataset
  /// harness path, still taken by fig4/fig67/ablation).
  data::SyntheticMatrixConfig generator;
  /// Optional dataset source (data/dataset.h). When set, rows are
  /// streamed from it — each protocol pass Reset()s the source and
  /// re-feeds it through the driver's streaming entry point, so the
  /// stream is never materialized whole. `generator` is then ignored
  /// except that `stream_len` still caps the row count.
  data::DatasetSource* source = nullptr;
  size_t stream_len = 100000;
  size_t num_sites = 50;
  uint64_t seed = 1;
  /// Site-phase worker threads (0 = DMT_THREADS / hardware concurrency).
  size_t threads = 0;
  /// Rows between coordinator synchronization rounds.
  size_t chunk_elements = 4096;
};

struct MatrixProtocolSpec {
  std::string name;  // P1 | P2 | P3 | P3wr | P4 | FD | SVD
  double eps = 0.1;
  size_t k = 30;  // only for FD / SVD baselines
};

inline std::unique_ptr<matrix::MatrixTrackingProtocol> MakeMatrixProtocol(
    const MatrixProtocolSpec& spec, size_t m, size_t dim, uint64_t seed) {
  if (spec.name == "P1") {
    return std::make_unique<matrix::MP1BatchedFD>(m, spec.eps);
  }
  if (spec.name == "P2") {
    return std::make_unique<matrix::MP2SvdThreshold>(m, spec.eps);
  }
  if (spec.name == "P3") {
    return std::make_unique<matrix::MP3SamplingWoR>(m, spec.eps, seed);
  }
  if (spec.name == "P3wr") {
    return std::make_unique<matrix::MP3SamplingWR>(m, spec.eps, seed);
  }
  if (spec.name == "P4") {
    return std::make_unique<matrix::MP4Experimental>(m, spec.eps, seed);
  }
  if (spec.name == "FD") {
    return std::make_unique<matrix::NaiveFdBaseline>(m, spec.k);
  }
  return std::make_unique<matrix::NaiveSvdBaseline>(m, dim, spec.k);
}

/// Runs all `specs` over one shared row stream — synthetic
/// (cfg.generator) or a real dataset (cfg.source) — and reports the
/// paper's matrix metrics for each.
///
/// Both paths feed every protocol the identical (site, row) sequence:
/// the synthetic path materializes the stream once; the dataset path
/// replays the source per protocol (Reset() replays are bit-identical by
/// contract) through the driver's streaming entry point, with a fresh
/// equally-seeded router per pass, so only one synchronization window is
/// ever in memory.
inline std::vector<MatrixMetrics> RunMatrixExperiment(
    const MatrixExperimentConfig& cfg,
    const std::vector<MatrixProtocolSpec>& specs) {
  const size_t dim = cfg.source != nullptr ? cfg.source->dim()
                                           : cfg.generator.dim;
  std::vector<std::unique_ptr<matrix::MatrixTrackingProtocol>> protocols;
  for (size_t i = 0; i < specs.size(); ++i) {
    protocols.push_back(
        MakeMatrixProtocol(specs[i], cfg.num_sites, dim, cfg.seed + 200 + i));
  }

  stream::SimulationOptions driver_opt;
  driver_opt.threads = cfg.threads;
  driver_opt.chunk_elements = cfg.chunk_elements;
  stream::SimulationDriver driver(driver_opt);

  matrix::CovarianceTracker truth(dim);
  if (cfg.source != nullptr) {
    // Truth pass, then one streaming replay per protocol. Same 0 -> 1
    // coercion the driver applies to chunk_elements, and the same
    // unbounded-source guard: stream_len == 0 means "the whole dataset",
    // which needs a finite one.
    DMT_CHECK(cfg.stream_len > 0 || cfg.source->info().rows > 0);
    const size_t chunk = cfg.chunk_elements == 0 ? 1 : cfg.chunk_elements;
    cfg.source->Reset();
    linalg::Matrix window;
    size_t fed = 0;
    while (cfg.stream_len == 0 || fed < cfg.stream_len) {
      const size_t want = cfg.stream_len == 0
                              ? chunk
                              : std::min(chunk, cfg.stream_len - fed);
      window.ClearRows();
      const size_t got = cfg.source->NextChunk(want, &window);
      if (got == 0) break;
      truth.AddRows(window);
      fed += got;
    }
    for (auto& p : protocols) {
      cfg.source->Reset();
      stream::Router router(cfg.num_sites, stream::RoutingPolicy::kUniform,
                            cfg.seed + 2);
      const size_t protocol_fed = driver.Run(p.get(), &router, cfg.source, fed);
      DMT_CHECK_EQ(protocol_fed, fed);
    }
  } else {
    data::SyntheticMatrixGenerator gen(cfg.generator);
    stream::Router router(cfg.num_sites, stream::RoutingPolicy::kUniform,
                          cfg.seed + 2);
    std::vector<std::vector<double>> rows(cfg.stream_len);
    for (size_t i = 0; i < cfg.stream_len; ++i) {
      rows[i] = gen.Next();
      truth.AddRow(rows[i]);
    }
    const std::vector<size_t> sites =
        stream::AssignSites(&router, cfg.stream_len);
    for (auto& p : protocols) driver.Run(p.get(), sites, rows);
  }

  std::vector<MatrixMetrics> out;
  for (size_t i = 0; i < protocols.size(); ++i) {
    MatrixMetrics m;
    m.protocol = specs[i].name;
    m.err = matrix::CovarianceError(truth, protocols[i]->CoordinatorGram());
    m.messages = protocols[i]->comm_stats().total();
    out.push_back(m);
  }
  return out;
}

/// Opens the dataset a figure/table bench was pointed at (--dataset /
/// --data-dir / --max-rows, DMT_DATA_DIR) and prints one header line
/// saying what is actually being served. `default_name` is the bench's
/// real dataset ("pamap" / "msd"); a bare `--dataset synthetic` is
/// mapped to the matched synthetic stand-in so fig3 never silently runs
/// d=44 data. Exits with a message on unknown names or unusable files.
inline std::unique_ptr<data::DatasetSource> OpenBenchDataset(
    int argc, char** argv, const std::string& default_name) {
  data::DatasetSpec defaults;
  defaults.name = default_name;
  data::DatasetSpec spec = data::ParseDatasetArgs(argc, argv, defaults);
  if (spec.name == "synthetic" && default_name == "msd") {
    spec.name = "synthetic-msd";
  }
  std::string error;
  std::unique_ptr<data::DatasetSource> source =
      data::OpenDataset(spec, &error);
  if (source == nullptr) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    std::exit(2);
  }
  const data::DatasetInfo& info = source->info();
  std::printf("dataset: %s (%s%s) — %llu rows x %zu cols, beta=%g\n",
              info.name.c_str(), info.origin.c_str(),
              info.synthetic_fallback ? ", fallback for missing real data"
                                      : "",
              static_cast<unsigned long long>(info.rows), info.dim,
              info.beta);
  return source;
}

/// Formats a count compactly for table cells.
inline std::string Fmt(uint64_t v) { return std::to_string(v); }
inline std::string Fmt(double v) { return TablePrinter::FormatDouble(v); }

}  // namespace bench
}  // namespace dmt

#endif  // DMT_BENCH_BENCH_UTIL_H_
