// Figure 4 (a),(b): communication vs error trade-off, eps tuned per run.
//
// For each protocol a sweep of eps produces one (err, msg) pair per run;
// the paper plots messages against achieved error. P1 wins at the
// smallest errors (at near-naive communication), P2/P3 win when orders of
// magnitude less communication is required.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

void RunDataset(const char* label, dmt::data::SyntheticMatrixConfig gen,
                size_t paper_n, size_t threads, size_t chunk) {
  using namespace dmt;
  using namespace dmt::bench;

  MatrixExperimentConfig cfg;
  cfg.generator = gen;
  cfg.stream_len = static_cast<size_t>(ScaledN(
      static_cast<int64_t>(paper_n), 6, 60));
  cfg.num_sites = 50;
  cfg.threads = threads;
  cfg.chunk_elements = chunk;

  TablePrinter t(std::string("Figure 4: messages vs err, ") + label +
                 " (N=" + std::to_string(cfg.stream_len) + ")");
  t.SetHeader({"protocol", "eps", "err", "messages"});
  // One shared pass per eps drives all three protocols on identical data.
  for (double eps : {5e-3, 1e-2, 5e-2, 1e-1, 5e-1}) {
    std::vector<MatrixProtocolSpec> specs{
        {"P1", eps, 0}, {"P2", eps, 0}, {"P3", eps, 0}};
    auto rows = RunMatrixExperiment(cfg, specs);
    for (const auto& r : rows) {
      t.AddRow({r.protocol, Fmt(eps), Fmt(r.err), Fmt(r.messages)});
    }
  }
  t.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using dmt::data::SyntheticMatrixGenerator;
  const size_t threads = dmt::bench::ParseThreadsFlag(argc, argv);
  const size_t chunk = dmt::stream::ParseChunkArg(argc, argv, 4096);
  std::printf("Figure 4: communication cost vs approximation error\n\n");
  RunDataset("(a) PAMAP-like", SyntheticMatrixGenerator::PamapLike(42),
             629250, threads, chunk);
  RunDataset("(b) MSD-like", SyntheticMatrixGenerator::MsdLike(43), 300000,
             threads, chunk);
  return 0;
}
