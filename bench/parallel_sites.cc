// Serial-vs-parallel speedup of the multi-site simulation engine.
//
// Runs a fixed heavy-hitter workload (P2) and a fixed matrix workload
// (MP1, the FD-heavy site phase) through stream::SimulationDriver at
// 1/2/4/8 threads, verifies the runs are bit-identical (total message
// count acts as the cheap fingerprint; the full guarantee is covered by
// tests/simulation_driver_test), and reports wall-clock speedups as JSON.
//
// Usage: parallel_sites [output.json] [--threads ignored]
//   DMT_SCALE=small|default|paper scales the stream lengths.
// The JSON is printed to stdout and, when a path is given, written there
// (the repo keeps a checked-in BENCH_parallel_sites.json).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/synthetic_matrix.h"
#include "data/zipf.h"
#include "hh/p2_threshold.h"
#include "matrix/mp1_batched_fd.h"
#include "stream/router.h"
#include "stream/simulation_driver.h"
#include "util/check.h"
#include "util/env.h"
#include "util/timer.h"

namespace {

using namespace dmt;

struct RunPoint {
  size_t threads;
  double seconds;
  uint64_t messages;
};

// Best-of-3 wall clock for one driver configuration.
template <typename MakeProtocol, typename Items>
RunPoint TimeRun(MakeProtocol make, const std::vector<size_t>& sites,
                 const Items& items, size_t threads, size_t chunk) {
  RunPoint point{threads, 1e100, 0};
  for (int rep = 0; rep < 3; ++rep) {
    auto protocol = make();
    stream::SimulationDriver driver(
        stream::SimulationOptions{threads, chunk});
    Timer timer;
    driver.Run(&protocol, sites, items);
    const double s = timer.Seconds();
    if (s < point.seconds) point.seconds = s;
    point.messages = protocol.comm_stats().total();
  }
  return point;
}

void PrintWorkload(FILE* f, const char* name, size_t n, size_t m,
                   const std::vector<RunPoint>& points, bool last) {
  std::fprintf(f, "    \"%s\": {\n", name);
  std::fprintf(f, "      \"stream_len\": %zu,\n", n);
  std::fprintf(f, "      \"num_sites\": %zu,\n", m);
  std::fprintf(f, "      \"messages\": %llu,\n",
               static_cast<unsigned long long>(points[0].messages));
  std::fprintf(f, "      \"runs\": [\n");
  const double serial = points[0].seconds;
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(
        f,
        "        {\"threads\": %zu, \"seconds\": %.6f, \"speedup\": %.3f}%s\n",
        points[i].threads, points[i].seconds, serial / points[i].seconds,
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "      ]\n");
  std::fprintf(f, "    }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      ++i;  // space-separated flag value is not the output path
      continue;
    }
    if (argv[i][0] != '-') out_path = argv[i];
  }

  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  // Heavy hitters: P2 over a Zipf stream (hash-map bound site phase).
  const size_t hh_n = static_cast<size_t>(ScaledN(4000000, 2, 40));
  const size_t hh_m = 32;
  data::ZipfianStream z(100000, 1.5, 100.0, 21);
  std::vector<stream::WeightedUpdate> items(hh_n);
  for (auto& it : items) {
    data::WeightedItem w = z.Next();
    it = stream::WeightedUpdate{w.element, w.weight};
  }
  stream::Router hh_router(hh_m, stream::RoutingPolicy::kUniform, 22);
  const std::vector<size_t> hh_sites = stream::AssignSites(&hh_router, hh_n);

  std::vector<RunPoint> hh_points;
  for (size_t t : thread_counts) {
    hh_points.push_back(TimeRun(
        [&] { return hh::P2Threshold(hh_m, 0.01); }, hh_sites, items, t,
        8192));
    DMT_CHECK_EQ(hh_points.back().messages, hh_points.front().messages);
  }

  // Matrix: MP1 over a PAMAP-like row stream (FD compute bound site phase).
  const size_t mx_n = static_cast<size_t>(ScaledN(120000, 2, 40));
  const size_t mx_m = 32;
  data::SyntheticMatrixGenerator gen(
      data::SyntheticMatrixGenerator::PamapLike(23));
  std::vector<std::vector<double>> rows(mx_n);
  for (auto& r : rows) r = gen.Next();
  stream::Router mx_router(mx_m, stream::RoutingPolicy::kUniform, 24);
  const std::vector<size_t> mx_sites = stream::AssignSites(&mx_router, mx_n);

  std::vector<RunPoint> mx_points;
  for (size_t t : thread_counts) {
    mx_points.push_back(TimeRun(
        [&] { return matrix::MP1BatchedFD(mx_m, 0.1); }, mx_sites, rows, t,
        4096));
    DMT_CHECK_EQ(mx_points.back().messages, mx_points.front().messages);
  }

  bench::EmitBenchJson(out_path, "parallel_sites", [&](FILE* f) {
    std::fprintf(f, "  \"determinism_check\": \"messages identical across "
                 "thread counts\",\n");
    std::fprintf(f, "  \"workloads\": {\n");
    PrintWorkload(f, "hh_p2_zipf", hh_n, hh_m, hh_points, false);
    PrintWorkload(f, "matrix_mp1_pamap", mx_n, mx_m, mx_points, true);
    std::fprintf(f, "  }\n");
  });
  return 0;
}
