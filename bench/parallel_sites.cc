// Serial-vs-parallel speedup and site-count scaling of the multi-site
// simulation engine.
//
// Two sections:
//
//  - Fixed workloads: a heavy-hitter stream (P2, hash-map bound site
//    phase) and a matrix row stream (MP1, FD compute bound) through
//    stream::SimulationDriver at 1/2/4/8 requested threads, verifying
//    bit-identical results across counts (messages + the coordinator's
//    total-weight / Frobenius fingerprint) and reporting wall-clock
//    speedups.
//
//  - m-sweep: P2 at m = 10^3..10^5 sites (10^4 at DMT_SCALE=small, 10^6
//    at DMT_SCALE=paper) with
//    ~10 arrivals per site, exercising the batch-reservation scheduler
//    where the old one-task-per-site driver drowned (m pool round-trips
//    and O(m) drain scans per window). Each point records the driver's
//    SchedulerStats counters — windows, batches reserved, mean sites per
//    batch, targeted drains vs full-scan drain stalls.
//
// Every run records both the requested and the effective thread count
// (ResolveThreadCount clamps at 4x the hardware threads); on a
// single-hardware-thread machine the JSON carries a degraded_environment
// marker and speedups are not meaningful.
//
// Usage: parallel_sites [output.json] [--threads ignored]
//   DMT_SCALE=small|default|paper scales the stream lengths.
// The JSON is printed to stdout and, when a path is given, written there
// (the repo keeps a checked-in BENCH_parallel_sites.json).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/synthetic_matrix.h"
#include "data/zipf.h"
#include "hh/p2_threshold.h"
#include "matrix/mp1_batched_fd.h"
#include "stream/router.h"
#include "stream/simulation_driver.h"
#include "util/check.h"
#include "util/env.h"
#include "util/timer.h"

namespace {

using namespace dmt;

struct RunPoint {
  size_t threads;            // requested
  size_t effective_threads;  // after DMT_THREADS / clamp resolution
  double seconds;
  uint64_t messages;
  double fingerprint;  // coordinator total weight (bit-compared)
  stream::SchedulerStats sched;
};

// Coordinator-state fingerprint, bit-compared across thread counts (the
// full bit-identity guarantee is covered by tests/simulation_driver_test
// and tests/parallel_scale_test).
inline double Fingerprint(const hh::P2Threshold& p) {
  return p.EstimateTotalWeight();
}
inline double Fingerprint(const matrix::MP1BatchedFD& p) {
  return p.coordinator_frobenius();
}

// Best-of-`reps` wall clock for one driver configuration.
template <typename MakeProtocol, typename Items>
RunPoint TimeRun(MakeProtocol make, const std::vector<size_t>& sites,
                 const Items& items, size_t threads, size_t chunk,
                 int reps = 3) {
  RunPoint point{threads, 0, 1e100, 0, 0.0, {}};
  for (int rep = 0; rep < reps; ++rep) {
    auto protocol = make();
    stream::SimulationOptions opt;
    opt.threads = threads;
    opt.chunk_elements = chunk;
    stream::SimulationDriver driver(opt);
    Timer timer;
    driver.Run(&protocol, sites, items);
    const double s = timer.Seconds();
    if (s < point.seconds) point.seconds = s;
    point.effective_threads = driver.threads();
    point.messages = protocol.comm_stats().total();
    point.fingerprint = Fingerprint(protocol);
    point.sched = driver.scheduler_stats();
  }
  return point;
}

void PrintSched(FILE* f, const stream::SchedulerStats& s) {
  std::fprintf(f,
               "\"windows\": %llu, \"batches_reserved\": %llu, "
               "\"mean_sites_per_batch\": %.1f, \"targeted_drains\": %llu, "
               "\"drain_stalls\": %llu",
               static_cast<unsigned long long>(s.windows),
               static_cast<unsigned long long>(s.batches_reserved),
               s.mean_sites_per_batch(),
               static_cast<unsigned long long>(s.targeted_drains),
               static_cast<unsigned long long>(s.drain_stalls));
}

void PrintWorkload(FILE* f, const char* name, size_t n, size_t m,
                   const std::vector<RunPoint>& points, bool last) {
  std::fprintf(f, "    \"%s\": {\n", name);
  std::fprintf(f, "      \"stream_len\": %zu,\n", n);
  std::fprintf(f, "      \"num_sites\": %zu,\n", m);
  std::fprintf(f, "      \"messages\": %llu,\n",
               static_cast<unsigned long long>(points[0].messages));
  std::fprintf(f, "      \"runs\": [\n");
  const double serial = points[0].seconds;
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f,
                 "        {\"threads\": %zu, \"effective_threads\": %zu, "
                 "\"seconds\": %.6f, \"speedup\": %.3f, ",
                 points[i].threads, points[i].effective_threads,
                 points[i].seconds, serial / points[i].seconds);
    PrintSched(f, points[i].sched);
    std::fprintf(f, "}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "      ]\n");
  std::fprintf(f, "    }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      ++i;  // space-separated flag value is not the output path
      continue;
    }
    if (argv[i][0] != '-') out_path = argv[i];
  }

  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  // Heavy hitters: P2 over a Zipf stream (hash-map bound site phase).
  const size_t hh_n = static_cast<size_t>(ScaledN(4000000, 2, 40));
  const size_t hh_m = 32;
  data::ZipfianStream z(100000, 1.5, 100.0, 21);
  std::vector<stream::WeightedUpdate> items(hh_n);
  for (auto& it : items) {
    data::WeightedItem w = z.Next();
    it = stream::WeightedUpdate{w.element, w.weight};
  }
  stream::Router hh_router(hh_m, stream::RoutingPolicy::kUniform, 22);
  const std::vector<size_t> hh_sites = stream::AssignSites(&hh_router, hh_n);

  std::vector<RunPoint> hh_points;
  for (size_t t : thread_counts) {
    hh_points.push_back(TimeRun(
        [&] { return hh::P2Threshold(hh_m, 0.01); }, hh_sites, items, t,
        8192));
    DMT_CHECK_EQ(hh_points.back().messages, hh_points.front().messages);
    DMT_CHECK_EQ(hh_points.back().fingerprint, hh_points.front().fingerprint);
  }

  // Matrix: MP1 over a PAMAP-like row stream (FD compute bound site phase).
  const size_t mx_n = static_cast<size_t>(ScaledN(120000, 2, 40));
  const size_t mx_m = 32;
  data::SyntheticMatrixGenerator gen(
      data::SyntheticMatrixGenerator::PamapLike(23));
  std::vector<std::vector<double>> rows(mx_n);
  for (auto& r : rows) r = gen.Next();
  stream::Router mx_router(mx_m, stream::RoutingPolicy::kUniform, 24);
  const std::vector<size_t> mx_sites = stream::AssignSites(&mx_router, mx_n);

  std::vector<RunPoint> mx_points;
  for (size_t t : thread_counts) {
    mx_points.push_back(TimeRun(
        [&] {
          return matrix::MP1BatchedFD(mx_m, 0.1);
        },
        mx_sites, rows, t, 4096,
        /*reps=*/3));
    DMT_CHECK_EQ(mx_points.back().messages, mx_points.front().messages);
    DMT_CHECK_EQ(mx_points.back().fingerprint, mx_points.front().fingerprint);
  }

  // m-sweep: P2 at large site counts, ~10 arrivals per site. This is the
  // regime the batch-reservation scheduler exists for; the counters show
  // how the windows were carved up. Timings use one rep (the sweep is
  // about scaling shape and counters, not best-case latency) and threads
  // {1, 4} — enough to see the scheduler operate without multiplying the
  // bench time.
  // Scale gates the sweep's upper end: small (CI smoke) stops at 10^4,
  // default records through 10^5 (the regime the scheduler targets),
  // paper adds the 10^6 point.
  const Scale scale = GetScale();
  std::vector<size_t> sweep_ms = {1000, 10000};
  if (scale != Scale::kSmall) sweep_ms.push_back(100000);
  if (scale == Scale::kPaper) sweep_ms.push_back(1000000);
  const std::vector<size_t> sweep_threads = {1, 4};

  struct SweepPoint {
    size_t m;
    size_t n;
    std::vector<RunPoint> runs;
  };
  std::vector<SweepPoint> sweep;
  for (size_t m : sweep_ms) {
    const size_t n = 10 * m;
    data::ZipfianStream sz(100000, 1.5, 100.0, 31);
    std::vector<stream::WeightedUpdate> sitems(n);
    for (auto& it : sitems) {
      data::WeightedItem w = sz.Next();
      it = stream::WeightedUpdate{w.element, w.weight};
    }
    stream::Router sr(m, stream::RoutingPolicy::kUniform, 32);
    const std::vector<size_t> ssites = stream::AssignSites(&sr, n);

    SweepPoint point{m, n, {}};
    for (size_t t : sweep_threads) {
      point.runs.push_back(TimeRun(
          [&] { return hh::P2Threshold(m, 0.05); }, ssites, sitems, t, 8192,
          /*reps=*/1));
      DMT_CHECK_EQ(point.runs.back().messages, point.runs.front().messages);
      DMT_CHECK_EQ(point.runs.back().fingerprint,
                   point.runs.front().fingerprint);
    }
    sweep.push_back(std::move(point));
  }

  bench::EmitBenchJson(out_path, "parallel_sites", [&](FILE* f) {
    std::fprintf(f, "  \"determinism_check\": \"messages and coordinator "
                 "fingerprint identical across thread counts\",\n");
    std::fprintf(f, "  \"workloads\": {\n");
    PrintWorkload(f, "hh_p2_zipf", hh_n, hh_m, hh_points, false);
    PrintWorkload(f, "matrix_mp1_pamap", mx_n, mx_m, mx_points, true);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"m_sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& p = sweep[i];
      std::fprintf(f, "    {\"num_sites\": %zu, \"stream_len\": %zu, "
                   "\"messages\": %llu, \"runs\": [\n",
                   p.m, p.n,
                   static_cast<unsigned long long>(p.runs[0].messages));
      for (size_t j = 0; j < p.runs.size(); ++j) {
        std::fprintf(f,
                     "      {\"threads\": %zu, \"effective_threads\": %zu, "
                     "\"seconds\": %.6f, ",
                     p.runs[j].threads, p.runs[j].effective_threads,
                     p.runs[j].seconds);
        PrintSched(f, p.runs[j].sched);
        std::fprintf(f, "}%s\n", j + 1 < p.runs.size() ? "," : "");
      }
      std::fprintf(f, "    ]}%s\n", i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
  });
  return 0;
}
