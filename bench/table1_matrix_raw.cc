// Table 1: raw err and msg numbers on PAMAP (k=30) and MSD (k=50).
//
// Paper setup: PAMAP N=629,250 d=44 (low rank), MSD N=300,000 d=90 (high
// rank), eps = 0.1, m = 50. Methods: P1, P2, P3wor, P3wr, and the two
// ship-everything baselines FD (ell = k) and SVD (best rank-k).
//
// Runs on the real matrices when they are available:
//   table1_matrix_raw --data-dir <dir>                  # both datasets
//   table1_matrix_raw --dataset pamap --data-dir <dir>  # one of them
// Each dataset falls back to its synthetic stand-in (with a log line)
// when its files are absent. See docs/DATASETS.md / tools/fetch_datasets.sh.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

void RunDataset(int argc, char** argv, const std::string& name,
                size_t paper_n, int64_t default_div, size_t k) {
  using namespace dmt;
  using namespace dmt::bench;

  std::unique_ptr<data::DatasetSource> source =
      OpenBenchDataset(argc, argv, name);

  MatrixExperimentConfig cfg;
  cfg.source = source.get();
  cfg.stream_len = static_cast<size_t>(
      ScaledN(static_cast<int64_t>(paper_n), default_div, default_div * 10));
  if (source->info().rows != 0) {
    cfg.stream_len = std::min<size_t>(
        cfg.stream_len, static_cast<size_t>(source->info().rows));
  }
  cfg.num_sites = 50;
  cfg.threads = ParseThreadsFlag(argc, argv);
  cfg.chunk_elements = stream::ParseChunkArg(argc, argv, cfg.chunk_elements);

  std::vector<MatrixProtocolSpec> specs{
      {"P1", 0.1, k}, {"P2", 0.1, k},   {"P3", 0.1, k},
      {"P3wr", 0.1, k}, {"FD", 0.1, k}, {"SVD", 0.1, k}};
  auto rows = RunMatrixExperiment(cfg, specs);

  TablePrinter t("Table 1: " + source->info().name + ", k=" +
                 std::to_string(k) + ", N=" + std::to_string(cfg.stream_len) +
                 ", d=" + std::to_string(source->dim()) + ", eps=0.1, m=50");
  t.SetHeader({"Method", "err", "msg"});
  for (const auto& r : rows) {
    // The paper labels the without-replacement sampler P3wor.
    std::string label = r.protocol == "P3" ? "P3wor" : r.protocol;
    t.AddRow({label, Fmt(r.err), Fmt(r.messages)});
  }
  t.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using dmt::data::ParseDatasetArgs;
  std::printf("Table 1: distributed matrix tracking, raw numbers\n\n");
  // --dataset selects one matrix; the default runs the paper's both.
  const std::string selected = ParseDatasetArgs(argc, argv).name;
  const bool pamap_like = selected != "msd" && selected != "synthetic-msd";
  const bool msd_like = selected != "pamap" && selected != "synthetic-pamap";
  if (pamap_like) RunDataset(argc, argv, "pamap", 629250, 3, 30);
  if (msd_like) RunDataset(argc, argv, "msd", 300000, 3, 50);
  return 0;
}
