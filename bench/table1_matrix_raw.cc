// Table 1: raw err and msg numbers on PAMAP (k=30) and MSD (k=50).
//
// Paper setup: PAMAP N=629,250 d=44 (low rank), MSD N=300,000 d=90 (high
// rank), eps = 0.1, m = 50. Methods: P1, P2, P3wor, P3wr, and the two
// ship-everything baselines FD (ell = k) and SVD (best rank-k).
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

void RunDataset(const char* label, dmt::data::SyntheticMatrixConfig gen,
                size_t paper_n, size_t k) {
  using namespace dmt;
  using namespace dmt::bench;

  MatrixExperimentConfig cfg;
  cfg.generator = gen;
  cfg.stream_len = static_cast<size_t>(ScaledN(
      static_cast<int64_t>(paper_n), 3, 30));
  cfg.num_sites = 50;

  std::vector<MatrixProtocolSpec> specs{
      {"P1", 0.1, k}, {"P2", 0.1, k},   {"P3", 0.1, k},
      {"P3wr", 0.1, k}, {"FD", 0.1, k}, {"SVD", 0.1, k}};
  auto rows = RunMatrixExperiment(cfg, specs);

  TablePrinter t(std::string("Table 1: ") + label + ", k=" +
                 std::to_string(k) + ", N=" + std::to_string(cfg.stream_len) +
                 ", d=" + std::to_string(gen.dim) + ", eps=0.1, m=50");
  t.SetHeader({"Method", "err", "msg"});
  for (const auto& r : rows) {
    // The paper labels the without-replacement sampler P3wor.
    std::string name = r.protocol == "P3" ? "P3wor" : r.protocol;
    t.AddRow({name, Fmt(r.err), Fmt(r.messages)});
  }
  t.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  using dmt::data::SyntheticMatrixGenerator;
  std::printf("Table 1: distributed matrix tracking, raw numbers\n\n");
  RunDataset("PAMAP-like", SyntheticMatrixGenerator::PamapLike(42), 629250,
             30);
  RunDataset("MSD-like", SyntheticMatrixGenerator::MsdLike(43), 300000, 50);
  return 0;
}
