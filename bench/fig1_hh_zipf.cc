// Figure 1 (a)-(f): distributed weighted heavy hitters on Zipfian data.
//
// Paper setup: 10^7 Zipf(skew=2) elements, weights Unif[1, beta=1000],
// m = 50 sites, phi = 0.05, eps in {5e-4, 1e-3, 5e-3, 1e-2, 5e-2}.
// DMT_SCALE=paper reproduces the full 10^7; the default runs 10^6 so the
// whole suite finishes in minutes with the same qualitative shape.
//
//   (a) recall vs eps        (b) precision vs eps
//   (c) avg err of true HH vs eps   (d) #messages vs eps
//   (e) err vs messages (the same runs re-keyed)
//   (f) messages vs beta at fixed eps
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dmt;
  using namespace dmt::bench;

  HhExperimentConfig base;
  base.stream_len = static_cast<size_t>(ScaledN(10000000, 10, 100));
  base.num_sites = 50;
  base.beta = 1000.0;
  base.phi = 0.05;
  // Site-phase parallelism; results are thread-count invariant (but do
  // depend on --chunk, which is part of the simulated schedule).
  base.threads = ParseThreadsFlag(argc, argv);
  base.chunk_elements =
      dmt::stream::ParseChunkArg(argc, argv, base.chunk_elements);

  const std::vector<std::string> protos{"P1", "P2", "P3", "P4"};
  const std::vector<double> eps_values{5e-4, 1e-3, 5e-3, 1e-2, 5e-2};

  std::printf("Figure 1: weighted heavy hitters, Zipf skew=2, N=%zu, "
              "m=%zu, beta=%.0f, phi=%.2f\n\n",
              base.stream_len, base.num_sites, base.beta, base.phi);

  TablePrinter recall("Figure 1(a): recall vs eps");
  TablePrinter precision("Figure 1(b): precision vs eps");
  TablePrinter err("Figure 1(c): avg rel err of true HH vs eps");
  TablePrinter msg("Figure 1(d): messages vs eps");
  TablePrinter tradeoff("Figure 1(e): err vs messages");
  for (auto* t : {&recall, &precision, &err, &msg}) {
    t->SetHeader({"eps", "P1", "P2", "P3", "P4"});
  }
  tradeoff.SetHeader({"protocol", "eps", "messages", "err"});

  for (double eps : eps_values) {
    HhExperimentConfig cfg = base;
    auto rows = RunHhExperiment(cfg, protos,
                                std::vector<double>(protos.size(), eps));
    std::vector<std::string> r{Fmt(eps)}, p{Fmt(eps)}, e{Fmt(eps)},
        m{Fmt(eps)};
    for (const auto& row : rows) {
      r.push_back(Fmt(row.recall));
      p.push_back(Fmt(row.precision));
      e.push_back(Fmt(row.avg_rel_err));
      m.push_back(Fmt(row.messages));
      tradeoff.AddRow(
          {row.protocol, Fmt(eps), Fmt(row.messages), Fmt(row.avg_rel_err)});
    }
    recall.AddRow(r);
    precision.AddRow(p);
    err.AddRow(e);
    msg.AddRow(m);
  }
  recall.Print();
  std::printf("\n");
  precision.Print();
  std::printf("\n");
  err.Print();
  std::printf("\n");
  msg.Print();
  std::printf("\n");
  tradeoff.Print();
  std::printf("\n");

  // Figure 1(f): messages vs beta at fixed eps (the paper tunes each
  // protocol to err ~ 0.1; a fixed moderate eps shows the same robustness
  // of the message count to the weight upper bound).
  TablePrinter beta_table("Figure 1(f): messages vs beta (eps = 0.01)");
  beta_table.SetHeader({"beta", "P1", "P2", "P3", "P4"});
  for (double beta : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    HhExperimentConfig cfg = base;
    cfg.beta = beta;
    cfg.stream_len = base.stream_len / 4;  // 5 extra passes; keep it quick
    auto rows = RunHhExperiment(
        cfg, protos, std::vector<double>(protos.size(), 0.01));
    std::vector<std::string> r{Fmt(beta)};
    for (const auto& row : rows) r.push_back(Fmt(row.messages));
    beta_table.AddRow(r);
  }
  beta_table.Print();
  return 0;
}
