// Micro benchmarks (google-benchmark) for the computational kernels the
// protocols are built on. Not a paper figure; used to track the library's
// own performance.
#include <benchmark/benchmark.h>

#include "data/synthetic_matrix.h"
#include "data/zipf.h"
#include "hh/p2_threshold.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/spectral.h"
#include "matrix/mp1_batched_fd.h"
#include "sketch/count_min.h"
#include "sketch/frequent_directions.h"
#include "sketch/misra_gries.h"
#include "sketch/priority_sampler.h"
#include "sketch/space_saving.h"
#include "stream/simulation_driver.h"
#include "util/rng.h"

namespace {

using namespace dmt;

void BM_JacobiEigen(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(1);
  linalg::Matrix a = linalg::RandomGaussianMatrix(4 * d, d, &rng);
  linalg::Matrix gram = a.Gram();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::SymmetricEigen(gram));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JacobiEigen)->Arg(16)->Arg(44)->Arg(90);

void BM_FrequentDirectionsAppend(benchmark::State& state) {
  const size_t ell = static_cast<size_t>(state.range(0));
  const size_t d = 44;
  Rng rng(2);
  sketch::FrequentDirections fd(ell, d);
  std::vector<double> row(d);
  for (auto _ : state) {
    for (auto& v : row) v = rng.NextGaussian();
    fd.Append(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrequentDirectionsAppend)->Arg(8)->Arg(20)->Arg(50);

void BM_MisraGriesUpdate(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  sketch::WeightedMisraGries mg(k);
  data::ZipfianStream z(100000, 1.2, 100.0, 3);
  for (auto _ : state) {
    data::WeightedItem item = z.Next();
    mg.Update(item.element, item.weight);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MisraGriesUpdate)->Arg(64)->Arg(1024);

void BM_SpaceSavingUpdate(benchmark::State& state) {
  sketch::SpaceSaving ss(static_cast<size_t>(state.range(0)));
  data::ZipfianStream z(100000, 1.2, 100.0, 4);
  for (auto _ : state) {
    data::WeightedItem item = z.Next();
    ss.Update(item.element, item.weight);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingUpdate)->Arg(64)->Arg(1024);

void BM_CountMinUpdate(benchmark::State& state) {
  sketch::CountMin cm(4, 2048, 5);
  data::ZipfianStream z(100000, 1.2, 100.0, 5);
  for (auto _ : state) {
    data::WeightedItem item = z.Next();
    cm.Update(item.element, item.weight);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinUpdate);

void BM_PrioritySamplerAdd(benchmark::State& state) {
  sketch::PrioritySamplerWoR sampler(static_cast<size_t>(state.range(0)), 6);
  data::ZipfianStream z(100000, 1.2, 100.0, 7);
  uint64_t i = 0;
  for (auto _ : state) {
    data::WeightedItem item = z.Next();
    sampler.Add(i++, item.weight);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrioritySamplerAdd)->Arg(256)->Arg(4096);

void BM_ZipfianNext(benchmark::State& state) {
  data::ZipfianStream z(static_cast<uint64_t>(state.range(0)), 2.0, 1000.0,
                        8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext)->Arg(10000)->Arg(1000000);

// ---------------------------------------------------------------------
// Parallel simulation driver: end-to-end site-phase throughput at a given
// thread count (range(0)). Results are thread-count invariant; only the
// wall clock moves.
// ---------------------------------------------------------------------

void BM_SimulationDriverHhP2(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t kN = 200000;
  const size_t kSites = 32;
  data::ZipfianStream z(100000, 1.5, 100.0, 9);
  std::vector<stream::WeightedUpdate> items(kN);
  for (auto& it : items) {
    data::WeightedItem w = z.Next();
    it = stream::WeightedUpdate{w.element, w.weight};
  }
  stream::Router router(kSites, stream::RoutingPolicy::kUniform, 10);
  const std::vector<size_t> sites = stream::AssignSites(&router, kN);

  // The driver (and its thread pool) lives across iterations; only the
  // protocol run is timed, not pthread creation.
  stream::SimulationDriver driver(stream::SimulationOptions{threads, 8192});
  for (auto _ : state) {
    hh::P2Threshold p(kSites, 0.01);
    driver.Run(&p, sites, items);
    benchmark::DoNotOptimize(p.comm_stats().total());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_SimulationDriverHhP2)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SimulationDriverMp1(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t kN = 20000;
  const size_t kSites = 32;
  data::SyntheticMatrixGenerator gen(
      data::SyntheticMatrixGenerator::PamapLike(11));
  std::vector<std::vector<double>> rows(kN);
  for (auto& r : rows) r = gen.Next();
  stream::Router router(kSites, stream::RoutingPolicy::kUniform, 12);
  const std::vector<size_t> sites = stream::AssignSites(&router, kN);

  stream::SimulationDriver driver(stream::SimulationOptions{threads, 4096});
  for (auto _ : state) {
    matrix::MP1BatchedFD p(kSites, 0.1);
    driver.Run(&p, sites, rows);
    benchmark::DoNotOptimize(p.comm_stats().total());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_SimulationDriverMp1)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
