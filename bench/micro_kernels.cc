// Naive-vs-blocked throughput of the linalg kernel layer plus the FD
// shrink pipeline, tracked as BENCH_micro_kernels.json the same way
// parallel_sites tracks the simulation engine.
//
// Usage: micro_kernels [output.json]
//   DMT_SCALE=small|default|paper scales the problem sizes and timing
//   budget. The JSON is printed to stdout and, when a path is given,
//   written there (the repo keeps a checked-in BENCH_micro_kernels.json).
//
// Reported metrics:
//  * GEMM and Gram GFLOP/s for the seed's naive triple loops
//    (kernels::GemmNaive / GramNaive) versus the blocked kernels, across
//    square and tall problem sizes.
//  * Frequent Directions shrink pipeline: streaming rows/sec, shrink
//    events/sec through the warm-started in-place pipeline, and the cost
//    of one cold RightSingularOf-based shrink of the same buffer shape
//    for comparison.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"
#include "sketch/frequent_directions.h"
#include "util/check.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace dmt;
namespace kn = linalg::kernels;

std::vector<double> RandomVec(size_t n, Rng* rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->NextGaussian();
  return v;
}

// Adaptive best-effort timing: repeats `fn` until `budget` seconds of
// samples accumulate and returns seconds per call (minimum over batches,
// to shed scheduler noise).
template <typename Fn>
double SecondsPerCall(Fn fn, double budget) {
  fn();  // warm the caches / page in the buffers
  size_t reps = 1;
  double best = 1e100;
  double spent = 0.0;
  while (spent < budget) {
    Timer t;
    for (size_t i = 0; i < reps; ++i) fn();
    const double s = t.Seconds();
    spent += s;
    best = std::min(best, s / static_cast<double>(reps));
    if (s < budget / 8.0) reps *= 2;
  }
  return best;
}

struct KernelPoint {
  size_t m, k, n;          // problem shape (Gram: n rows = m, d = k)
  double naive_gflops;
  double blocked_gflops;
  double speedup;
  double max_abs_diff;     // blocked vs naive result (sanity)
};

KernelPoint MeasureGemm(size_t s, double budget, Rng* rng) {
  std::vector<double> a = RandomVec(s * s, rng);
  std::vector<double> b = RandomVec(s * s, rng);
  std::vector<double> c_naive(s * s), c_blocked(s * s);
  const double flops = 2.0 * static_cast<double>(s) * s * s;
  const double tn = SecondsPerCall(
      [&] { kn::GemmNaive(a.data(), b.data(), c_naive.data(), s, s, s); },
      budget);
  const double tb = SecondsPerCall(
      [&] { kn::Gemm(a.data(), b.data(), c_blocked.data(), s, s, s); },
      budget);
  KernelPoint p{s, s, s, flops / tn / 1e9, flops / tb / 1e9, tn / tb, 0.0};
  for (size_t i = 0; i < s * s; ++i) {
    p.max_abs_diff =
        std::max(p.max_abs_diff, std::fabs(c_naive[i] - c_blocked[i]));
  }
  return p;
}

KernelPoint MeasureGram(size_t n, size_t d, double budget, Rng* rng) {
  std::vector<double> a = RandomVec(n * d, rng);
  std::vector<double> g_naive(d * d), g_blocked(d * d);
  // Upper-triangle MACs mirrored: count the same n*d^2 flops for both.
  const double flops = static_cast<double>(n) * d * d;
  const double tn = SecondsPerCall(
      [&] { kn::GramNaive(a.data(), n, d, g_naive.data()); }, budget);
  const double tb = SecondsPerCall(
      [&] { kn::Gram(a.data(), n, d, g_blocked.data()); }, budget);
  KernelPoint p{n, d, d, flops / tn / 1e9, flops / tb / 1e9, tn / tb, 0.0};
  for (size_t i = 0; i < d * d; ++i) {
    p.max_abs_diff =
        std::max(p.max_abs_diff, std::fabs(g_naive[i] - g_blocked[i]));
  }
  return p;
}

struct ShrinkPoint {
  size_t dim, ell, rows;
  double rows_per_sec;
  size_t shrink_events;
  double shrink_events_per_sec;   // amortized over the full append stream
  double cold_shrink_seconds;     // one cold RightSingularOf shrink
};

ShrinkPoint MeasureShrink(size_t d, size_t ell, size_t n, Rng* rng) {
  sketch::FrequentDirections fd(ell, d);
  std::vector<double> row(d);
  Timer t;
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = rng->NextGaussian();
    fd.Append(row);
  }
  const double s = t.Seconds();
  ShrinkPoint p{d, ell, n, n / s, fd.shrink_count(), fd.shrink_count() / s,
                0.0};

  // Cold comparison: one from-scratch decomposition of a full 2*ell x d
  // buffer, the per-event cost of the pre-warm-start pipeline.
  linalg::Matrix buffer(2 * ell, d);
  for (size_t i = 0; i < 2 * ell; ++i) {
    for (size_t j = 0; j < d; ++j) buffer(i, j) = rng->NextGaussian();
  }
  p.cold_shrink_seconds = SecondsPerCall(
      [&] {
        linalg::RightSingular rs = linalg::RightSingularOf(buffer);
        DMT_CHECK(!rs.squared_sigma.empty());
      },
      0.2);
  return p;
}

void PrintKernelPoints(FILE* f, const char* name,
                       const std::vector<KernelPoint>& points, bool last) {
  std::fprintf(f, "  \"%s\": [\n", name);
  for (size_t i = 0; i < points.size(); ++i) {
    const KernelPoint& p = points[i];
    std::fprintf(f,
                 "    {\"m\": %zu, \"k\": %zu, \"n\": %zu, "
                 "\"naive_gflops\": %.3f, \"blocked_gflops\": %.3f, "
                 "\"speedup\": %.3f, \"max_abs_diff\": %.3e}%s\n",
                 p.m, p.k, p.n, p.naive_gflops, p.blocked_gflops, p.speedup,
                 p.max_abs_diff, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      ++i;  // space-separated flag value is not the output path
      continue;
    }
    if (argv[i][0] != '-') out_path = argv[i];
  }

  const Scale scale = GetScale();
  // small keeps the CI smoke run to a couple of seconds; default covers
  // the 256^3 acceptance point; paper adds a 384 point.
  std::vector<size_t> sizes = {64, 128};
  if (scale != Scale::kSmall) sizes.push_back(256);
  if (scale == Scale::kPaper) sizes.push_back(384);
  const double budget = scale == Scale::kSmall ? 0.05 : 0.25;

  Rng rng(12345);
  std::vector<KernelPoint> gemm, gram;
  for (size_t s : sizes) gemm.push_back(MeasureGemm(s, budget, &rng));
  for (size_t s : sizes) {
    gram.push_back(MeasureGram(2 * s, s, budget, &rng));
  }
  const size_t shrink_rows =
      static_cast<size_t>(ScaledN(40000, 2, 20));
  ShrinkPoint shrink = MeasureShrink(64, 32, shrink_rows, &rng);

  bench::EmitBenchJson(out_path, "micro_kernels", [&](FILE* f) {
    std::fprintf(f,
                 "  \"tiles\": {\"row\": %zu, \"col\": %zu, \"k\": %zu, "
                 "\"panel\": %zu},\n",
                 kn::kRowTile, kn::kColTile, kn::kKTile, kn::kPanelRows);
    PrintKernelPoints(f, "gemm", gemm, false);
    PrintKernelPoints(f, "gram", gram, false);
    std::fprintf(
        f,
        "  \"fd_shrink\": {\"dim\": %zu, \"ell\": %zu, \"rows\": %zu, "
        "\"rows_per_sec\": %.0f, \"shrink_events\": %zu, "
        "\"shrink_events_per_sec\": %.1f, "
        "\"cold_shrink_seconds\": %.6f}\n",
        shrink.dim, shrink.ell, shrink.rows, shrink.rows_per_sec,
        shrink.shrink_events, shrink.shrink_events_per_sec,
        shrink.cold_shrink_seconds);
  });

  // Hard correctness gate so the smoke run fails loudly if the blocked
  // kernels ever drift from the reference loops.
  for (const auto& p : gemm) DMT_CHECK_LT(p.max_abs_diff, 1e-6);
  for (const auto& p : gram) DMT_CHECK_LT(p.max_abs_diff, 1e-6);
  return 0;
}
