// Figure 3 (a)-(d): matrix tracking on the YearPredictionMSD (high rank)
// stream. Same four plots as Figure 2 on the d=90 heavy-spectral-tail
// matrix.
//
// Runs on the real MSD matrix when it is available:
//   fig3_msd --dataset msd --data-dir <dir> [--threads N] [--chunk N]
// Falls back to the synthetic MSD-like stream (with a log line) when the
// data directory is absent; `--dataset synthetic` forces that. See
// docs/DATASETS.md for the download/layout and tools/fetch_datasets.sh.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dmt;
  using namespace dmt::bench;

  std::unique_ptr<data::DatasetSource> source =
      OpenBenchDataset(argc, argv, "msd");

  MatrixExperimentConfig base;
  base.source = source.get();
  base.stream_len = static_cast<size_t>(ScaledN(300000, 12, 120));
  if (source->info().rows != 0) {
    base.stream_len = std::min<size_t>(
        base.stream_len, static_cast<size_t>(source->info().rows));
  }
  base.num_sites = 50;
  base.threads = ParseThreadsFlag(argc, argv);
  base.chunk_elements =
      stream::ParseChunkArg(argc, argv, base.chunk_elements);

  std::printf("Figure 3: MSD stream, N=%zu, d=%zu\n\n", base.stream_len,
              source->dim());

  const std::vector<double> eps_values{5e-3, 1e-2, 5e-2, 1e-1, 5e-1};
  TablePrinter err_eps("Figure 3(a): err vs eps (m=50)");
  TablePrinter msg_eps("Figure 3(b): messages vs eps (m=50)");
  err_eps.SetHeader({"eps", "P1", "P2", "P3"});
  msg_eps.SetHeader({"eps", "P1", "P2", "P3"});
  for (double eps : eps_values) {
    std::vector<MatrixProtocolSpec> specs{
        {"P1", eps, 0}, {"P2", eps, 0}, {"P3", eps, 0}};
    auto rows = RunMatrixExperiment(base, specs);
    err_eps.AddRow(
        {Fmt(eps), Fmt(rows[0].err), Fmt(rows[1].err), Fmt(rows[2].err)});
    msg_eps.AddRow({Fmt(eps), Fmt(rows[0].messages), Fmt(rows[1].messages),
                    Fmt(rows[2].messages)});
  }
  err_eps.Print();
  std::printf("\n");
  msg_eps.Print();
  std::printf("\n");

  TablePrinter msg_m("Figure 3(c): messages vs sites (eps=0.1)");
  TablePrinter err_m("Figure 3(d): err vs sites (eps=0.1)");
  msg_m.SetHeader({"m", "P1", "P2", "P3"});
  err_m.SetHeader({"m", "P1", "P2", "P3"});
  for (size_t m : {10u, 25u, 50u, 75u, 100u}) {
    MatrixExperimentConfig cfg = base;
    cfg.num_sites = m;
    std::vector<MatrixProtocolSpec> specs{
        {"P1", 0.1, 0}, {"P2", 0.1, 0}, {"P3", 0.1, 0}};
    auto rows = RunMatrixExperiment(cfg, specs);
    msg_m.AddRow({Fmt(static_cast<uint64_t>(m)), Fmt(rows[0].messages),
                  Fmt(rows[1].messages), Fmt(rows[2].messages)});
    err_m.AddRow({Fmt(static_cast<uint64_t>(m)), Fmt(rows[0].err),
                  Fmt(rows[1].err), Fmt(rows[2].err)});
  }
  msg_m.Print();
  std::printf("\n");
  err_m.Print();
  return 0;
}
