// Ablation benches for design choices called out in DESIGN.md:
//
//  1. MP2's lazy trace-guard: how many eigendecompositions the guard
//     performs versus the paper's literal per-row svd formulation (the
//     guard sends identical messages — verified in tests — at a fraction
//     of the decompositions).
//  2. MP4 basis re-alignment: the appendix's sketched fix (periodic FD
//     re-alignment) versus plain P4 — error repaired vs extra messages.
//  3. MP3 sampling modes: without- vs with-replacement at equal eps.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "matrix/mp2_svd_threshold.h"
#include "matrix/mp4_experimental.h"
#include "util/timer.h"

namespace {

using namespace dmt;
using namespace dmt::bench;

void AblationMp2TraceGuard() {
  const size_t n = static_cast<size_t>(ScaledN(200000, 2, 20));
  const size_t m = 50;
  TablePrinter t("Ablation 1: MP2 lazy trace-guard (PAMAP-like stream)");
  t.SetHeader({"eps", "rows", "eigendecompositions", "decomp/row",
               "messages", "err"});
  for (double eps : {5e-2, 1e-1, 5e-1}) {
    matrix::MP2SvdThreshold p(m, eps);
    data::SyntheticMatrixGenerator gen(
        data::SyntheticMatrixGenerator::PamapLike(42));
    stream::Router router(m, stream::RoutingPolicy::kUniform, 7);
    matrix::CovarianceTracker truth(gen.config().dim);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> row = gen.Next();
      truth.AddRow(row);
      p.ProcessRow(router.NextSite(), row);
    }
    t.AddRow({Fmt(eps), Fmt(static_cast<uint64_t>(n)),
              Fmt(static_cast<uint64_t>(p.decomposition_count())),
              Fmt(static_cast<double>(p.decomposition_count()) /
                  static_cast<double>(n)),
              Fmt(p.comm_stats().total()),
              Fmt(matrix::CovarianceError(truth, p.CoordinatorGram()))});
  }
  t.Print();
  std::printf("\n");
}

void AblationMp4Realignment() {
  const size_t n = static_cast<size_t>(ScaledN(100000, 2, 20));
  const size_t m = 50;
  const double eps = 0.1;
  TablePrinter t("Ablation 2: MP4 basis re-alignment (PAMAP-like stream)");
  t.SetHeader({"variant", "err", "messages"});
  for (size_t realign : {0u, 8u, 4u, 2u}) {
    matrix::MP4Options opts;
    opts.realign_rounds = realign;
    matrix::MP4Experimental p(m, eps, 3, opts);
    data::SyntheticMatrixGenerator gen(
        data::SyntheticMatrixGenerator::PamapLike(42));
    stream::Router router(m, stream::RoutingPolicy::kUniform, 9);
    matrix::CovarianceTracker truth(gen.config().dim);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> row = gen.Next();
      truth.AddRow(row);
      p.ProcessRow(router.NextSite(), row);
    }
    std::string name = realign == 0
                           ? "plain (paper appendix C)"
                           : "realign every " + std::to_string(realign) +
                                 " rounds";
    t.AddRow({name, Fmt(matrix::CovarianceError(truth, p.CoordinatorGram())),
              Fmt(p.comm_stats().total())});
  }
  t.Print();
  std::printf("\n");
}

void AblationMp3Modes() {
  const size_t n = static_cast<size_t>(ScaledN(200000, 2, 20));
  TablePrinter t("Ablation 3: MP3 without- vs with-replacement sampling");
  t.SetHeader({"eps", "P3wor err", "P3wor msg", "P3wr err", "P3wr msg"});
  MatrixExperimentConfig cfg;
  cfg.generator = data::SyntheticMatrixGenerator::PamapLike(42);
  cfg.stream_len = n;
  cfg.num_sites = 50;
  for (double eps : {5e-2, 1e-1, 2e-1}) {
    std::vector<MatrixProtocolSpec> specs{{"P3", eps, 0}, {"P3wr", eps, 0}};
    auto rows = RunMatrixExperiment(cfg, specs);
    t.AddRow({Fmt(eps), Fmt(rows[0].err), Fmt(rows[0].messages),
              Fmt(rows[1].err), Fmt(rows[1].messages)});
  }
  t.Print();
}

}  // namespace

int main() {
  std::printf("Ablation benches (design choices from DESIGN.md)\n\n");
  AblationMp2TraceGuard();
  AblationMp4Realignment();
  AblationMp3Modes();
  return 0;
}
