// Figures 6 and 7 (appendix): why matrix protocol P4 does not work.
//
// P4 is compared against P1/P2/P3 on both data regimes: err vs eps and
// err vs number of sites. The expected shape: P4's error does not track
// eps at all — it typically exceeds every other protocol and the eps
// target itself (on the low-rank stream dramatically so).
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

void RunDataset(const char* fig, const char* label,
                dmt::data::SyntheticMatrixConfig gen, size_t paper_n) {
  using namespace dmt;
  using namespace dmt::bench;

  MatrixExperimentConfig base;
  base.generator = gen;
  base.stream_len = static_cast<size_t>(ScaledN(
      static_cast<int64_t>(paper_n), 6, 60));
  base.num_sites = 50;

  TablePrinter err_eps(std::string(fig) + "(a): err vs eps, " + label +
                       " (m=50, N=" + std::to_string(base.stream_len) + ")");
  err_eps.SetHeader({"eps", "P1", "P2", "P3", "P4"});
  for (double eps : {1e-2, 5e-2, 1e-1, 5e-1}) {
    std::vector<MatrixProtocolSpec> specs{
        {"P1", eps, 0}, {"P2", eps, 0}, {"P3", eps, 0}, {"P4", eps, 0}};
    auto rows = RunMatrixExperiment(base, specs);
    err_eps.AddRow({Fmt(eps), Fmt(rows[0].err), Fmt(rows[1].err),
                    Fmt(rows[2].err), Fmt(rows[3].err)});
  }
  err_eps.Print();
  std::printf("\n");

  TablePrinter err_m(std::string(fig) + "(b): err vs sites, " + label +
                     " (eps=0.1)");
  err_m.SetHeader({"m", "P1", "P2", "P3", "P4"});
  for (size_t m : {10u, 50u, 100u}) {
    MatrixExperimentConfig cfg = base;
    cfg.num_sites = m;
    std::vector<MatrixProtocolSpec> specs{
        {"P1", 0.1, 0}, {"P2", 0.1, 0}, {"P3", 0.1, 0}, {"P4", 0.1, 0}};
    auto rows = RunMatrixExperiment(cfg, specs);
    err_m.AddRow({Fmt(static_cast<uint64_t>(m)), Fmt(rows[0].err),
                  Fmt(rows[1].err), Fmt(rows[2].err), Fmt(rows[3].err)});
  }
  err_m.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  using dmt::data::SyntheticMatrixGenerator;
  std::printf("Figures 6/7 (appendix): matrix protocol P4 vs the rest\n\n");
  RunDataset("Figure 6", "PAMAP-like",
             SyntheticMatrixGenerator::PamapLike(42), 629250);
  RunDataset("Figure 7", "MSD-like", SyntheticMatrixGenerator::MsdLike(43),
             300000);
  return 0;
}
