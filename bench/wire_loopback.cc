// Wire transport overhead on loopback: the same distributed workload run
// (a) in-process through stream::SimulationDriver (the oracle), (b) over
// the in-memory local channel pair, and (c) over real TCP loopback
// sockets — coordinator and site runners on threads inside one process.
// Reports wall clock per path plus the bytes-on-the-wire totals next to
// the paper's message counters, for both P1 and MP2.
//
// Usage: wire_loopback [output.json]
//   DMT_SCALE=small|default|paper scales the stream lengths.
// The JSON is printed to stdout and, when a path is given, written there
// (the repo keeps a checked-in BENCH_wire_loopback.json).
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/remote.h"
#include "net/transport.h"
#include "net/workload.h"
#include "util/check.h"
#include "util/env.h"
#include "util/timer.h"

namespace {

using namespace dmt;

struct WirePoint {
  double oracle_seconds = 0.0;
  double local_seconds = 0.0;
  double tcp_seconds = 0.0;
  uint64_t messages = 0;       // CommStats total (paper metric)
  uint64_t bytes_up = 0;       // TCP run, site -> coordinator
  uint64_t bytes_down = 0;     // TCP run, coordinator -> site
  uint64_t frames = 0;         // TCP run, frames drained upstream
};

// Runs coordinator + sites on threads over pre-connected channels and
// returns the wall clock of the whole window loop.
double RunOnThreads(const net::WireRunConfig& config,
                    const net::WireWorkload& workload,
                    net::WireProtocol* coord,
                    std::vector<std::unique_ptr<net::Connection>> coord_ends,
                    std::vector<std::unique_ptr<net::Connection>> site_ends,
                    net::WireCoordinatorReport* report) {
  std::vector<net::WireProtocol> site_protocols(config.num_sites);
  std::vector<std::thread> threads;
  Timer timer;
  for (size_t s = 0; s < config.num_sites; ++s) {
    site_protocols[s] = net::MakeWireProtocol(config);
    threads.emplace_back([&, s, conn = site_ends[s].get()] {
      const auto windows = net::SiteWindowIndices(workload.sites, s,
                                                  workload.window_ends);
      const auto update =
          net::MakeSiteUpdater(workload, &site_protocols[s], s);
      std::string error;
      DMT_CHECK(net::RunWireSite(site_protocols[s].adapter.get(), s,
                                 windows, update, conn, &error));
    });
  }
  std::string error;
  DMT_CHECK(net::RunWireCoordinator(coord->adapter.get(), &coord_ends,
                                    workload.window_ends.size(), report,
                                    &error));
  for (auto& t : threads) t.join();
  return timer.Seconds();
}

WirePoint BenchProtocol(const std::string& protocol, size_t n) {
  net::WireRunConfig config;
  config.protocol = protocol;
  config.num_sites = 4;
  config.n = n;
  config.chunk = 1024;
  config.eps = 0.1;
  config.seed = 42;
  const net::WireWorkload workload = net::MakeWireWorkload(config);

  WirePoint point;
  {
    Timer timer;
    const net::WireProtocol oracle = net::RunOracle(config, workload);
    point.oracle_seconds = timer.Seconds();
  }

  {
    net::WireProtocol coord = net::MakeWireProtocol(config);
    std::vector<std::unique_ptr<net::Connection>> coord_ends;
    std::vector<std::unique_ptr<net::Connection>> site_ends;
    for (size_t s = 0; s < config.num_sites; ++s) {
      auto [site_end, coord_end] = net::MakeLocalPair();
      site_ends.push_back(std::move(site_end));
      coord_ends.push_back(std::move(coord_end));
    }
    net::WireCoordinatorReport report;
    point.local_seconds =
        RunOnThreads(config, workload, &coord, std::move(coord_ends),
                     std::move(site_ends), &report);
  }

  {
    net::WireProtocol coord = net::MakeWireProtocol(config);
    std::string error;
    auto listener = net::TcpListener::Listen(0, &error);
    DMT_CHECK(listener != nullptr);
    std::vector<std::unique_ptr<net::Connection>> site_ends(config.num_sites);
    std::vector<std::thread> dialers;
    for (size_t s = 0; s < config.num_sites; ++s) {
      dialers.emplace_back([&, s] {
        std::string connect_error;
        site_ends[s] =
            net::TcpConnect("127.0.0.1", listener->port(), &connect_error);
      });
    }
    std::vector<std::unique_ptr<net::Connection>> coord_ends;
    for (size_t s = 0; s < config.num_sites; ++s) {
      coord_ends.push_back(listener->Accept(&error));
      DMT_CHECK(coord_ends.back() != nullptr);
    }
    for (auto& t : dialers) t.join();

    net::WireCoordinatorReport report;
    point.tcp_seconds =
        RunOnThreads(config, workload, &coord, std::move(coord_ends),
                     std::move(site_ends), &report);
    const auto& stats = config.protocol == "p1"
                            ? coord.hh->comm_stats()
                            : coord.mp->comm_stats();
    point.messages = stats.total();
    point.bytes_up = report.total_bytes_up();
    point.bytes_down = report.total_bytes_down();
    point.frames = report.frames_received;
  }
  return point;
}

void PrintPoint(FILE* f, const char* name, size_t n, const WirePoint& p,
                bool last) {
  std::fprintf(f, "    \"%s\": {\n", name);
  std::fprintf(f, "      \"stream_len\": %zu,\n", n);
  std::fprintf(f, "      \"oracle_seconds\": %.6f,\n", p.oracle_seconds);
  std::fprintf(f, "      \"local_pair_seconds\": %.6f,\n", p.local_seconds);
  std::fprintf(f, "      \"tcp_loopback_seconds\": %.6f,\n", p.tcp_seconds);
  std::fprintf(f, "      \"messages\": %llu,\n",
               static_cast<unsigned long long>(p.messages));
  std::fprintf(f, "      \"frames_up\": %llu,\n",
               static_cast<unsigned long long>(p.frames));
  std::fprintf(f, "      \"bytes_up\": %llu,\n",
               static_cast<unsigned long long>(p.bytes_up));
  std::fprintf(f, "      \"bytes_down\": %llu\n",
               static_cast<unsigned long long>(p.bytes_down));
  std::fprintf(f, "    }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : nullptr;

  const std::string scale = GetEnvString("DMT_SCALE", "default");
  size_t n_hh = 200000;
  size_t n_matrix = 20000;
  if (scale == "small") {
    n_hh = 20000;
    n_matrix = 4000;
  } else if (scale == "paper") {
    n_hh = 1000000;
    n_matrix = 100000;
  }

  const WirePoint p1 = BenchProtocol("p1", n_hh);
  const WirePoint mp2 = BenchProtocol("mp2", n_matrix);

  bench::EmitBenchJson(out_path, "wire_loopback", [&](FILE* f) {
    std::fprintf(f, "  \"workloads\": {\n");
    PrintPoint(f, "p1", n_hh, p1, false);
    PrintPoint(f, "mp2", n_matrix, mp2, true);
    std::fprintf(f, "  }\n");
  });
  return 0;
}
