// Mixed read/write throughput of the serving layer: reader threads
// hammer SnapshotStore::Acquire + QueryEngine queries flat out while the
// parallel SimulationDriver ingests at full rate and the
// ServingCoordinator publishes a fresh snapshot at every window boundary.
//
// Two workloads, matching the serving test harnesses:
//
//  - hh_p2_zipf: P2 over a Zipfian weighted stream; each query op pins a
//    snapshot and runs TopK(8) + ElementWeight + TotalWeight.
//  - matrix_mp1_pamap: MP1 over a PAMAP-like row stream; each query op
//    runs a covariance quadratic form + TopSingularValues(3) off the
//    precomputed factorization.
//
// Each workload records three ingest timings — no serving attached,
// publish-only (snapshot export cost on the coordinator thread), and
// mixed (readers live) — plus the read side: total query ops, queries/sec
// over the mixed run, and p50/p99/max per-op latency from every-8th-op
// samples. Readers are wait-free by design, so the interesting numbers
// are publish_overhead (snapshot export, paid by ingestion) and
// reader_slowdown (cache pressure only; ~1.0 means readers really don't
// block the write path).
//
// Usage: serving_mixed [output.json] [--readers N] [--threads N]
//   DMT_SCALE=small|default|paper scales the stream lengths.
// The JSON goes to stdout and, when a path is given, to that file (the
// repo keeps a checked-in BENCH_serving_mixed.json).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "data/synthetic_matrix.h"
#include "data/zipf.h"
#include "hh/p2_threshold.h"
#include "matrix/mp1_batched_fd.h"
#include "serve/query_engine.h"
#include "serve/serving_coordinator.h"
#include "serve/snapshot.h"
#include "serve/snapshot_store.h"
#include "stream/router.h"
#include "stream/simulation_driver.h"
#include "util/check.h"
#include "util/env.h"
#include "util/timer.h"

namespace {

using namespace dmt;

struct ReaderStats {
  uint64_t query_ops = 0;
  std::vector<double> sample_us;  // every-8th-op latencies
};

// One query op: pin the current snapshot, answer a fixed query mix, drop
// the pin. The mix touches both precomputed structures (sorted HH list,
// factored sketch) so the op cost reflects real serving work, not just
// the acquire fast path.
void QueryOp(serve::SnapshotReader* reader) {
  serve::SnapshotRef ref = reader->Acquire();
  const serve::Snapshot& snap = *ref;
  serve::QueryEngine engine(&snap);
  if (snap.has_hh) {
    (void)engine.TopK(8);
    (void)engine.ElementWeight(42);
    (void)engine.TotalWeight();
  }
  if (snap.has_matrix && !snap.sketch.empty()) {
    std::vector<double> x(snap.sketch.cols(), 0.0);
    x[0] = 1.0;
    (void)engine.CovarianceQuadraticForm(x);
    (void)engine.TopSingularValues(3);
  }
}

void ReaderLoop(serve::SnapshotStore* store, std::atomic<bool>* done,
                ReaderStats* stats) {
  constexpr size_t kMaxSamples = 1u << 20;
  serve::SnapshotReader reader(store);
  stats->sample_us.reserve(kMaxSamples);
  uint64_t iter = 0;
  while (!done->load(std::memory_order_acquire)) {
    if ((iter++ & 7) == 0 && stats->sample_us.size() < kMaxSamples) {
      Timer t;
      QueryOp(&reader);
      stats->sample_us.push_back(t.Seconds() * 1e6);
    } else {
      QueryOp(&reader);
    }
    ++stats->query_ops;
  }
}

double Percentile(const std::vector<double>& sorted, double frac) {
  if (sorted.empty()) return 0.0;
  return sorted[static_cast<size_t>(frac *
                                    static_cast<double>(sorted.size() - 1))];
}

struct WorkloadResult {
  size_t stream_len = 0;
  size_t num_sites = 0;
  size_t effective_threads = 0;
  uint64_t windows = 0;
  double ingest_no_serving_s = 0.0;
  double ingest_publish_only_s = 0.0;
  double ingest_mixed_s = 0.0;
  uint64_t query_ops = 0;
  size_t samples = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

// Runs one workload three times on fresh protocols: ingest-only,
// publish-only, then mixed with `readers` query threads. `attach` hooks
// the fresh protocol into the serving coordinator (AttachHH /
// AttachMatrix pick the snapshot builder).
template <typename MakeProtocol, typename AttachFn, typename Items>
WorkloadResult RunWorkload(MakeProtocol make, AttachFn attach,
                           const std::vector<size_t>& sites,
                           const Items& items, size_t num_sites,
                           size_t threads, size_t chunk, size_t readers) {
  WorkloadResult res;
  res.stream_len = items.size();
  res.num_sites = num_sites;
  stream::SimulationOptions opt;
  opt.threads = threads;
  opt.chunk_elements = chunk;

  {
    auto protocol = make();
    stream::SimulationDriver driver(opt);
    Timer t;
    driver.Run(&protocol, sites, items);
    res.ingest_no_serving_s = t.Seconds();
    res.effective_threads = driver.threads();
  }

  {
    auto protocol = make();
    stream::SimulationDriver driver(opt);
    serve::SnapshotStore store;
    serve::ServingCoordinator serving(&store);
    attach(&serving, &driver, &protocol);
    Timer t;
    driver.Run(&protocol, sites, items);
    res.ingest_publish_only_s = t.Seconds();
    res.windows = serving.windows_published();
    serving.Detach();
  }

  {
    auto protocol = make();
    stream::SimulationDriver driver(opt);
    serve::SnapshotStore store;
    serve::ServingCoordinator serving(&store);
    attach(&serving, &driver, &protocol);

    std::atomic<bool> done{false};
    std::vector<ReaderStats> stats(readers);
    std::vector<std::thread> pool;
    pool.reserve(readers);
    for (size_t r = 0; r < readers; ++r) {
      pool.emplace_back(ReaderLoop, &store, &done, &stats[r]);
    }
    Timer t;
    driver.Run(&protocol, sites, items);
    res.ingest_mixed_s = t.Seconds();
    done.store(true, std::memory_order_release);
    for (auto& th : pool) th.join();
    serving.Detach();

    std::vector<double> all;
    for (const ReaderStats& s : stats) {
      res.query_ops += s.query_ops;
      all.insert(all.end(), s.sample_us.begin(), s.sample_us.end());
    }
    std::sort(all.begin(), all.end());
    res.samples = all.size();
    res.qps = static_cast<double>(res.query_ops) / res.ingest_mixed_s;
    res.p50_us = Percentile(all, 0.50);
    res.p99_us = Percentile(all, 0.99);
    res.max_us = all.empty() ? 0.0 : all.back();
  }
  return res;
}

void PrintWorkload(FILE* f, const char* name, const WorkloadResult& r,
                   bool last) {
  std::fprintf(f, "    \"%s\": {\n", name);
  std::fprintf(f, "      \"stream_len\": %zu,\n", r.stream_len);
  std::fprintf(f, "      \"num_sites\": %zu,\n", r.num_sites);
  std::fprintf(f, "      \"effective_threads\": %zu,\n",
               r.effective_threads);
  std::fprintf(f, "      \"windows_published\": %llu,\n",
               static_cast<unsigned long long>(r.windows));
  std::fprintf(f,
               "      \"ingest_seconds\": {\"no_serving\": %.6f, "
               "\"publish_only\": %.6f, \"mixed\": %.6f},\n",
               r.ingest_no_serving_s, r.ingest_publish_only_s,
               r.ingest_mixed_s);
  std::fprintf(f, "      \"publish_overhead\": %.3f,\n",
               r.ingest_publish_only_s / r.ingest_no_serving_s);
  std::fprintf(f, "      \"reader_slowdown\": %.3f,\n",
               r.ingest_mixed_s / r.ingest_publish_only_s);
  std::fprintf(f, "      \"query_ops\": %llu,\n",
               static_cast<unsigned long long>(r.query_ops));
  std::fprintf(f, "      \"queries_per_sec\": %.0f,\n", r.qps);
  std::fprintf(f,
               "      \"latency_us\": {\"p50\": %.2f, \"p99\": %.2f, "
               "\"max\": %.2f, \"samples\": %zu}\n",
               r.p50_us, r.p99_us, r.max_us, r.samples);
  std::fprintf(f, "    }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  size_t readers = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--readers" && i + 1 < argc) {
      readers = static_cast<size_t>(std::atol(argv[++i]));
      continue;
    }
    if (arg.rfind("--readers=", 0) == 0) {
      readers = static_cast<size_t>(std::atol(arg.c_str() + 10));
      continue;
    }
    if (arg == "--threads") {
      ++i;  // space-separated flag value is not the output path
      continue;
    }
    if (arg[0] != '-') out_path = argv[i];
  }
  DMT_CHECK_GE(readers, 1u);
  const size_t threads = bench::ParseThreadsFlag(argc, argv);

  // Heavy hitters: P2 over a Zipf stream.
  const size_t hh_n = static_cast<size_t>(ScaledN(2000000, 2, 40));
  const size_t hh_m = 16;
  data::ZipfianStream z(100000, 1.5, 100.0, 41);
  std::vector<stream::WeightedUpdate> items(hh_n);
  for (auto& it : items) {
    data::WeightedItem w = z.Next();
    it = stream::WeightedUpdate{w.element, w.weight};
  }
  stream::Router hh_router(hh_m, stream::RoutingPolicy::kUniform, 42);
  const std::vector<size_t> hh_sites = stream::AssignSites(&hh_router, hh_n);

  const WorkloadResult hh = RunWorkload(
      [&] { return hh::P2Threshold(hh_m, 0.05); },
      [](serve::ServingCoordinator* serving, stream::SimulationDriver* d,
         hh::P2Threshold* p) { serving->AttachHH(d, p); },
      hh_sites, items, hh_m, threads, 8192, readers);

  // Matrix: MP1 over a PAMAP-like row stream.
  const size_t mx_n = static_cast<size_t>(ScaledN(150000, 2, 40));
  const size_t mx_m = 16;
  data::SyntheticMatrixGenerator gen(
      data::SyntheticMatrixGenerator::PamapLike(43));
  std::vector<std::vector<double>> rows(mx_n);
  for (auto& r : rows) r = gen.Next();
  stream::Router mx_router(mx_m, stream::RoutingPolicy::kUniform, 44);
  const std::vector<size_t> mx_sites = stream::AssignSites(&mx_router, mx_n);

  const WorkloadResult mx = RunWorkload(
      [&] { return matrix::MP1BatchedFD(mx_m, 0.1); },
      [](serve::ServingCoordinator* serving, stream::SimulationDriver* d,
         matrix::MP1BatchedFD* p) { serving->AttachMatrix(d, p); },
      mx_sites, rows, mx_m, threads, 4096, readers);

  // Smoke gate: the mixed run must actually have served queries from
  // every reader's loop and published every window.
  DMT_CHECK_GT(hh.query_ops, 0u);
  DMT_CHECK_GT(mx.query_ops, 0u);
  DMT_CHECK_GT(hh.windows, 0u);
  DMT_CHECK_GT(mx.windows, 0u);

  bench::EmitBenchJson(out_path, "serving_mixed", [&](FILE* f) {
    std::fprintf(f, "  \"readers\": %zu,\n", readers);
    std::fprintf(f, "  \"query_mix\": \"pin + TopK(8)/ElementWeight/"
                 "TotalWeight (hh) or quadratic form/TopSingularValues(3) "
                 "(matrix) + unpin\",\n");
    std::fprintf(f, "  \"workloads\": {\n");
    PrintWorkload(f, "hh_p2_zipf", hh, false);
    PrintWorkload(f, "matrix_mp1_pamap", mx, true);
    std::fprintf(f, "  }\n");
  });
  return 0;
}
