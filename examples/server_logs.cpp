// Example: weighted heavy hitters over distributed server access logs.
//
// The paper's second motivating scenario: log records arrive continuously
// at many servers; each record references a resource (URL, tag, word) and
// carries a size in bytes. The operator wants, at any moment, the
// resources responsible for at least 5% of total traffic *by bytes* —
// weighted heavy hitters, not mere counts.
//
// This example replays a Zipfian byte-weighted log across 30 servers with
// protocol P2 and compares against the exact oracle, printing the live
// heavy-hitter board at checkpoints.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/continuous_hh_tracker.h"
#include "data/zipf.h"
#include "stream/router.h"

int main() {
  const size_t kServers = 30;
  const double kEps = 0.005;
  const double kPhi = 0.05;

  dmt::HhTrackerConfig cfg;
  cfg.num_sites = kServers;
  cfg.epsilon = kEps;
  cfg.protocol = dmt::HhProtocol::kP2Threshold;
  dmt::ContinuousHeavyHitterTracker tracker(cfg);

  // Requests follow a Zipf law over 50k resources; response sizes are
  // 1..1024 "KB".
  dmt::data::ZipfianStream logs(50000, 2.0, 1024.0, 11);
  dmt::stream::Router router(kServers, dmt::stream::RoutingPolicy::kUniform,
                             12);
  dmt::data::ExactWeights oracle;

  const size_t kRecords = 500000;
  std::printf("tracking >=%.0f%%-of-traffic resources across %zu servers "
              "(eps=%.3f)\n",
              100 * kPhi, kServers, kEps);
  for (size_t i = 0; i < kRecords; ++i) {
    dmt::data::WeightedItem rec = logs.Next();
    oracle.Observe(rec);
    tracker.Observe(router.NextSite(), rec.element, rec.weight);

    if ((i + 1) % 125000 == 0) {
      auto reported = tracker.HeavyHitters(kPhi);
      std::sort(reported.begin(), reported.end());
      auto truth = oracle.HeavyHitters(kPhi);
      size_t hits = 0;
      for (uint64_t e : truth) {
        if (std::find(reported.begin(), reported.end(), e) !=
            reported.end()) {
          ++hits;
        }
      }
      std::printf("\nafter %zu records: %zu heavy resources, recall %.2f, "
                  "messages %llu\n",
                  i + 1, truth.size(),
                  truth.empty() ? 1.0
                                : static_cast<double>(hits) / truth.size(),
                  static_cast<unsigned long long>(
                      tracker.comm_stats().total()));
      std::printf("  %-12s %-16s %-16s %-8s\n", "resource",
                  "bytes(true)", "bytes(tracked)", "share");
      for (uint64_t e : reported) {
        std::printf("  %-12llu %-16.0f %-16.0f %-8.4f\n",
                    static_cast<unsigned long long>(e), oracle.Weight(e),
                    tracker.EstimateWeight(e),
                    oracle.Weight(e) / oracle.total_weight());
      }
    }
  }

  std::printf("\ntotal: %zu records; protocol sent %llu messages "
              "(%.3f%% of naive)\n",
              kRecords,
              static_cast<unsigned long long>(tracker.comm_stats().total()),
              100.0 * static_cast<double>(tracker.comm_stats().total()) /
                  static_cast<double>(kRecords));
  return 0;
}
