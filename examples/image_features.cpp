// Example: continuous PCA over distributed image-feature streams.
//
// The paper's motivating scenario (Section 1): a search-engine company has
// image data arriving at many data centers; each row is a feature vector
// (e.g. a 128-dimensional SIFT descriptor) and the company needs an
// excellent, real-time approximation of the global feature matrix for
// downstream PCA/LSI — without shipping every image's features.
//
// This example streams synthetic 128-d feature vectors into 20 "data
// centers", tracks them with protocol P2, and at checkpoints extracts the
// top principal directions from the coordinator's sketch, comparing the
// captured variance against exact PCA.
#include <cstdio>
#include <vector>

#include "core/continuous_matrix_tracker.h"
#include "data/synthetic_matrix.h"
#include "linalg/svd.h"
#include "matrix/error.h"
#include "stream/router.h"

namespace {

// Fraction of total variance captured by the top-k eigenpairs of `gram`.
double CapturedVariance(const dmt::linalg::Matrix& gram, size_t k) {
  dmt::linalg::RightSingular rs = dmt::linalg::RightSingularFromGram(gram);
  double total = 0.0, head = 0.0;
  for (size_t i = 0; i < rs.squared_sigma.size(); ++i) {
    total += rs.squared_sigma[i];
    if (i < k) head += rs.squared_sigma[i];
  }
  return total > 0.0 ? head / total : 0.0;
}

}  // namespace

int main() {
  const size_t kDataCenters = 20;
  const size_t kDim = 128;  // SIFT-like descriptors
  const size_t kTopK = 10;
  const double kEps = 0.05;

  dmt::MatrixTrackerConfig cfg;
  cfg.num_sites = kDataCenters;
  cfg.epsilon = kEps;
  cfg.protocol = dmt::MatrixProtocol::kP2SvdThreshold;
  dmt::ContinuousMatrixTracker tracker(cfg);

  // Feature vectors concentrate on a ~15-dimensional "visual vocabulary"
  // subspace plus descriptor noise.
  dmt::data::SyntheticMatrixConfig gen_cfg;
  gen_cfg.dim = kDim;
  gen_cfg.latent_rank = 15;
  gen_cfg.decay_base = 0.8;
  gen_cfg.noise_level = 0.02;
  gen_cfg.beta = 64.0;
  gen_cfg.seed = 2024;
  dmt::data::SyntheticMatrixGenerator gen(gen_cfg);

  dmt::stream::Router router(kDataCenters,
                             dmt::stream::RoutingPolicy::kUniform, 5);
  dmt::matrix::CovarianceTracker truth(kDim);

  std::printf("continuous PCA across %zu data centers (d=%zu, eps=%.2f)\n\n",
              kDataCenters, kDim, kEps);
  std::printf("%10s  %12s  %12s  %10s  %12s\n", "images", "PCA(exact)",
              "PCA(sketch)", "err", "messages");

  const size_t kImages = 60000;
  for (size_t i = 0; i < kImages; ++i) {
    std::vector<double> feature = gen.Next();
    truth.AddRow(feature);
    tracker.Append(router.NextSite(), feature);
    if ((i + 1) % 15000 == 0) {
      const double exact_var = CapturedVariance(truth.gram(), kTopK);
      const double sketch_var =
          CapturedVariance(tracker.SketchGram(), kTopK);
      const double err =
          dmt::matrix::CovarianceError(truth, tracker.SketchGram());
      std::printf("%10zu  %12.4f  %12.4f  %10.6f  %12llu\n", i + 1,
                  exact_var, sketch_var, err,
                  static_cast<unsigned long long>(
                      tracker.comm_stats().total()));
    }
  }

  std::printf("\nnaive cost would be %zu messages; the tracker used %llu "
              "(%.2f%%)\n",
              kImages,
              static_cast<unsigned long long>(tracker.comm_stats().total()),
              100.0 * static_cast<double>(tracker.comm_stats().total()) /
                  static_cast<double>(kImages));
  return 0;
}
