// Quickstart: track a distributed matrix with protocol P2 and compare the
// coordinator's continuous approximation against the exact covariance.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/quickstart
#include <cstdio>

#include "core/continuous_matrix_tracker.h"
#include "data/synthetic_matrix.h"
#include "matrix/error.h"
#include "stream/router.h"

int main() {
  // A 6-site deployment tracking 20-dimensional rows with eps = 0.1.
  dmt::MatrixTrackerConfig cfg;
  cfg.num_sites = 6;
  cfg.epsilon = 0.1;
  cfg.protocol = dmt::MatrixProtocol::kP2SvdThreshold;
  dmt::ContinuousMatrixTracker tracker(cfg);

  // A synthetic low-rank row stream plays the role of live data.
  dmt::data::SyntheticMatrixConfig gen_cfg;
  gen_cfg.dim = 20;
  gen_cfg.latent_rank = 5;
  gen_cfg.seed = 7;
  dmt::data::SyntheticMatrixGenerator gen(gen_cfg);

  dmt::stream::Router router(cfg.num_sites,
                             dmt::stream::RoutingPolicy::kUniform, 99);
  dmt::matrix::CovarianceTracker truth(gen_cfg.dim);

  const size_t kRows = 20000;
  for (size_t i = 0; i < kRows; ++i) {
    std::vector<double> row = gen.Next();
    truth.AddRow(row);
    tracker.Append(router.NextSite(), row);

    // Continuous queries: ask at a few checkpoints mid-stream.
    if ((i + 1) % 5000 == 0) {
      double err = dmt::matrix::CovarianceError(truth, tracker.SketchGram());
      std::printf("after %6zu rows: err = %.6f (guarantee %.2f), "
                  "messages = %llu\n",
                  i + 1, err, cfg.epsilon,
                  static_cast<unsigned long long>(
                      tracker.comm_stats().total()));
    }
  }

  dmt::linalg::Matrix sketch = tracker.Sketch();
  std::printf("\nfinal sketch: %zu rows x %zu cols (stream had %zu rows)\n",
              sketch.rows(), sketch.cols(), kRows);
  std::printf("communication: %llu messages vs %zu naive\n",
              static_cast<unsigned long long>(tracker.comm_stats().total()),
              kRows);
  return 0;
}
