// Example: distributed traffic-matrix monitoring with drift detection.
//
// Network monitors at many vantage points each observe flow records; a
// flow record is embedded as a feature row (ports, protocol mix, packet
// sizes...). Operators want to detect when the *direction* of traffic
// variation changes — the structural-analysis use case of Lakhina et al.
// cited by the paper — without ever centralizing the raw flows.
//
// This example tracks the flow matrix with protocol P3 (sampling) and
// watches the principal direction of the coordinator's sketch. Halfway
// through, the traffic pattern shifts (a new dominant subspace); the
// monitor detects the rotation of the top principal direction within a
// few thousand flows.
//
// Flows arrive in batches of 5000 and are pushed through the parallel
// simulation driver (--threads N, default DMT_THREADS / hardware
// concurrency): every monitor's local sampling runs concurrently, queries
// happen at batch boundaries, and the output is identical for any thread
// count.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/continuous_matrix_tracker.h"
#include "data/synthetic_matrix.h"
#include "linalg/svd.h"
#include "linalg/vec_ops.h"
#include "stream/router.h"
#include "stream/simulation_driver.h"

namespace {

std::vector<double> TopDirection(const dmt::linalg::Matrix& gram) {
  dmt::linalg::RightSingular rs = dmt::linalg::RightSingularFromGram(gram);
  std::vector<double> v(gram.rows());
  for (size_t i = 0; i < v.size(); ++i) v[i] = rs.v(i, 0);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t kMonitors = 16;
  const size_t kDim = 32;
  dmt::MatrixTrackerConfig cfg;
  cfg.num_sites = kMonitors;
  cfg.epsilon = 0.1;
  cfg.protocol = dmt::MatrixProtocol::kP3SampleWoR;
  cfg.seed = 77;
  dmt::ContinuousMatrixTracker tracker(cfg);

  // Two traffic regimes with different dominant subspaces (different
  // generator seeds produce rotated bases).
  dmt::data::SyntheticMatrixConfig regime_a;
  regime_a.dim = kDim;
  regime_a.latent_rank = 4;
  regime_a.decay_base = 0.6;
  regime_a.seed = 1001;
  dmt::data::SyntheticMatrixConfig regime_b = regime_a;
  regime_b.seed = 2002;

  dmt::data::SyntheticMatrixGenerator gen_a(regime_a);
  dmt::data::SyntheticMatrixGenerator gen_b(regime_b);
  dmt::stream::Router router(kMonitors,
                             dmt::stream::RoutingPolicy::kUniform, 3);

  const size_t kFlows = 80000;
  const size_t kShiftAt = kFlows / 2;
  const size_t kBatch = 5000;  // flows between queries / sync points
  std::vector<double> baseline_direction;

  dmt::stream::SimulationOptions driver_opt;
  driver_opt.threads = dmt::stream::ParseThreadsArg(argc, argv);
  driver_opt.chunk_elements = 1024;
  dmt::stream::SimulationDriver driver(driver_opt);

  std::printf("traffic matrix monitor: %zu vantage points, d=%zu, "
              "regime shift at flow %zu, %zu site threads\n\n",
              kMonitors, kDim, kShiftAt, driver.threads());
  std::printf("%10s  %22s  %12s\n", "flows", "|cos(top dir, baseline)|",
              "messages");

  for (size_t done = 0; done < kFlows; done += kBatch) {
    std::vector<std::vector<double>> flows(kBatch);
    for (size_t i = 0; i < kBatch; ++i) {
      flows[i] = (done + i < kShiftAt) ? gen_a.Next() : gen_b.Next();
    }
    const std::vector<size_t> sites =
        dmt::stream::AssignSites(&router, kBatch);
    tracker.AppendBatch(&driver, sites, flows);

    std::vector<double> dir = TopDirection(tracker.SketchGram());
    if (baseline_direction.empty()) baseline_direction = dir;
    const double cosine =
        std::fabs(dmt::linalg::Dot(dir, baseline_direction));
    std::printf("%10zu  %22.4f  %12llu%s\n", done + kBatch, cosine,
                static_cast<unsigned long long>(
                    tracker.comm_stats().total()),
                cosine < 0.7 ? "   <-- drift detected" : "");
  }
  return 0;
}
